"""Staleness measurement: did the built overlay deliver what it promised?

A consumer with latency constraint ``l_i`` was promised information no
staler than ``l_i`` delay units (of ``T`` each).  The report compares each
consumer's *measured* worst item-age-on-arrival against that promise.

Items published in the last ``DelayAt(i)`` units of a finite run may
legitimately still be in flight when the run stops; the report therefore
evaluates staleness only over items that had time to traverse the tree
(`seq <= published - warmup tail`), avoiding truncation artefacts.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence

from repro.core.tree import Overlay
from repro.feeds.client import FeedConsumer


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 < q <= 100).

    Deterministic and interpolation-free — the rank is
    ``ceil(q/100 * n)`` into the sorted values, so two runs that deliver
    the same multiset of stalenesses report bit-identical percentiles
    (what lets the service-soak benchmark gate on exact p999 values).
    Empty input reports 0.0: no delivery has no measured staleness.
    """
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def staleness_percentiles(
    values: Sequence[float], qs: Sequence[float] = (50.0, 99.0, 99.9)
) -> Dict[str, float]:
    """``{"p50": ..., "p99": ..., "p999": ...}`` over measured stalenesses.

    Keys drop the decimal point (``99.9`` -> ``"p999"``) so they can be
    used directly as benchmark metric names.
    """
    report = {}
    for q in qs:
        label = f"{q:g}".replace(".", "")
        report[f"p{label}"] = percentile(values, q)
    return report


@dataclasses.dataclass(frozen=True)
class ConsumerStaleness:
    """Measured delivery quality of one consumer."""

    node_id: int
    latency_constraint: int
    depth: int  # DelayAt at report time; 0 if unrooted
    received: int
    expected: int
    worst_staleness: float  # in pull periods (delay units)
    mean_staleness: float

    @property
    def within_constraint(self) -> bool:
        """Whether every *evaluated* delivery met the promised bound and
        nothing evaluated was missing."""
        return (
            self.received >= self.expected
            and self.worst_staleness <= self.latency_constraint + 1e-9
        )


@dataclasses.dataclass(frozen=True)
class StalenessReport:
    """Aggregate delivery quality of one dissemination run."""

    consumers: List[ConsumerStaleness]
    published: int
    evaluated: int
    pull_period: float

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of rooted consumers whose promise was kept."""
        rooted = [c for c in self.consumers if c.depth > 0]
        if not rooted:
            return 1.0
        return sum(1 for c in rooted if c.within_constraint) / len(rooted)

    def worst_violation(self) -> float:
        """Largest (staleness - constraint) over rooted consumers; <= 0
        means every promise was kept."""
        rooted = [c for c in self.consumers if c.depth > 0]
        if not rooted:
            return 0.0
        return max(c.worst_staleness - c.latency_constraint for c in rooted)


def build_report(
    overlay: Overlay,
    consumers: Dict[int, FeedConsumer],
    pull_period: float,
    published: int,
) -> StalenessReport:
    """Assemble the report; see the module docstring for the tail rule."""
    rows: List[ConsumerStaleness] = []
    for node in overlay.consumers:
        consumer = consumers[node.node_id]
        # Rootedness and DelayAt are O(1) chain-index reads.
        rooted = node.online and overlay.is_rooted(node)
        depth = overlay.delay_at(node) if rooted else 0
        # Items needing up to `depth` units to arrive: evaluate only those
        # published at least `depth + 1` units before the run ended.
        tail = depth + 1
        arrivals = consumer.arrivals
        values = [
            arrival.staleness / pull_period for arrival in arrivals.values()
        ]
        expected = max(0, published - tail) if rooted else 0
        received = sum(1 for seq in arrivals if seq <= expected)
        rows.append(
            ConsumerStaleness(
                node_id=node.node_id,
                latency_constraint=node.latency,
                depth=depth,
                received=received,
                expected=expected,
                worst_staleness=max(values) if values else 0.0,
                mean_staleness=(sum(values) / len(values)) if values else 0.0,
            )
        )
    evaluated = max(0, published - 1)
    return StalenessReport(
        consumers=rows,
        published=published,
        evaluated=evaluated,
        pull_period=pull_period,
    )
