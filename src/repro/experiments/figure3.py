"""Figure 3 — impact of the Oracle on (Greedy) construction latency.

Paper setting: 120 peers, the four topological constraints (Tf1, Rand,
BiCorr, BiUnCorr), no churn, Greedy construction under each of the four
Oracles; 5 repeats, median.  Expected shape (§5.2):

* Oracle *Random-Delay* (O3) has the best performance in many settings
  and good performance overall;
* Oracle *Random* (O1) always converges but more slowly;
* Oracles *Random-Capacity* (O2a) and *Random-Delay-Capacity* (O2b)
  "often not only take long time, but sometimes simply do not converge"
  — the capacity filter suppresses exactly the interactions that enable
  reconfigurations.

Run full scale: ``python -m repro.experiments.figure3``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import ascii_table, banner
from repro.analysis.stats import MedianOfRuns
from repro.experiments.config import PAPER, ExperimentProfile
from repro.experiments.runner import resolve_executor
from repro.oracles.base import ORACLES, oracle_names
from repro.par.executor import SweepExecutor
from repro.par.items import SweepItem, median_of_outcomes, repeat_items
from repro.sim.runner import SimulationConfig
from repro.workloads import PAPER_FAMILIES

GridKey = Tuple[str, str]  # (family, oracle)


def items(
    profile: ExperimentProfile = PAPER,
    algorithm: str = "greedy",
    families: Sequence[str] = PAPER_FAMILIES,
    oracles: Sequence[str] = tuple(oracle_names()),
) -> Tuple[List[GridKey], List[SweepItem]]:
    """The grid's cell keys and flat work-item list, in grid order."""
    keys = [(family, oracle) for family in families for oracle in oracles]
    work: List[SweepItem] = []
    for family, oracle in keys:
        work.extend(
            repeat_items(
                family,
                SimulationConfig(
                    algorithm=algorithm,
                    oracle=oracle,
                    max_rounds=profile.max_rounds,
                ),
                profile.population,
                profile.repeats,
                base_seed=profile.base_seed,
            )
        )
    return keys, work


def run(
    profile: ExperimentProfile = PAPER,
    algorithm: str = "greedy",
    families: Sequence[str] = PAPER_FAMILIES,
    oracles: Sequence[str] = tuple(oracle_names()),
    executor: Optional[SweepExecutor] = None,
) -> Dict[GridKey, MedianOfRuns]:
    """The full (family x oracle) grid of median construction latencies.

    The whole grid is submitted as one flat sweep — with a pooled
    executor every cell-repeat runs concurrently instead of cell by
    cell — then folded back into per-cell medians in grid order.
    """
    keys, work = items(profile, algorithm, families, oracles)
    outcomes = resolve_executor(executor).run(work)
    grid: Dict[GridKey, MedianOfRuns] = {}
    for index, key in enumerate(keys):
        chunk = outcomes[index * profile.repeats : (index + 1) * profile.repeats]
        grid[key] = median_of_outcomes(chunk)
    return grid


def rows(
    grid: Dict[GridKey, MedianOfRuns],
    families: Sequence[str] = PAPER_FAMILIES,
    oracles: Sequence[str] = tuple(oracle_names()),
) -> List[List[object]]:
    table = []
    for family in families:
        row: List[object] = [family]
        for oracle in oracles:
            row.append(grid[(family, oracle)].render())
        table.append(row)
    return table


def headers(oracles: Sequence[str] = tuple(oracle_names())) -> List[str]:
    return ["workload"] + [
        f"{ORACLES[name].figure_label} {name}" for name in oracles
    ]


def main() -> None:
    print(banner("Figure 3: Greedy construction latency per Oracle (median of 5)"))
    grid = run()
    print(ascii_table(headers(), rows(grid)))
    print(
        "\nShape check: O3 best overall; O1 converges but slower; "
        "O2a/O2b slow or stuck."
    )


if __name__ == "__main__":
    main()
