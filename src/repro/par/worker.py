"""The sweep worker: runs one :class:`~repro.par.items.SweepItem`.

This is the *only* code that executes sweep work, for every backend —
the serial executor calls :func:`execute_item` in-process and the pooled
executor calls it inside worker processes — so the two paths cannot
drift apart.  The body reproduces ``run_repeats``'s per-repeat protocol
verbatim: build the workload from ``(family, population, workload_seed)``,
then run the simulation with ``config.with_(seed=seed)``.

Failures never propagate: any exception raised while running an item is
captured into the returned :class:`~repro.par.items.SweepOutcome` with
the item's family/seed/config in the message, so one bad seed marks its
cell failed while the rest of the sweep proceeds.

Workload memoization: a fixed-draw sweep (``vary_workload=False``) gives
every item the same ``(family, population, workload_seed)`` key, so the
worker keeps a size-one memo of the last workload built — one
``make_workload`` call per fixed-draw sweep instead of one per repeat
(workloads are immutable value objects, so replaying one instance is
exactly Fig. 2's protocol).  The serial executor passes a fresh memo per
sweep; pooled workers share a per-process one.
"""

from __future__ import annotations

import os
import traceback
from typing import Any, Dict, Optional

from repro.par.items import SweepItem, SweepOutcome
from repro.workloads import make as make_workload

#: Per-process workload memo for pooled workers ({"key": ..., "workload": ...}).
_PROCESS_MEMO: Dict[str, Any] = {}


def _workload_for(item: SweepItem, memo: Dict[str, Any]):
    """The item's workload, via the size-one memo."""
    key = (item.family, item.population, item.workload_seed)
    if memo.get("key") != key:
        memo["key"] = key
        memo["workload"] = make_workload(
            item.family, size=item.population, seed=item.workload_seed
        )
    return memo["workload"]


def _trace_path(trace_dir: str, position: int, item: SweepItem) -> str:
    name = (
        f"{position:04d}_{item.family}_{item.config.algorithm}_"
        f"{item.config.oracle}_seed{item.seed}.jsonl"
    )
    return os.path.join(trace_dir, name)


def execute_item(
    item: SweepItem,
    position: int = 0,
    collect_obs: bool = False,
    trace_dir: Optional[str] = None,
    collect_health: bool = False,
    memo: Optional[Dict[str, Any]] = None,
) -> SweepOutcome:
    """Run one sweep item; always returns (never raises).

    With ``collect_obs`` or ``trace_dir`` the run carries a
    :class:`~repro.obs.probe.RecordingProbe`; with ``collect_health``
    the flight-recorder health timeseries stays on and its samples ride
    back in ``outcome.health`` (and into the per-seed trace when one is
    written).  Neither recorder consumes RNG or changes outcomes (the
    :mod:`repro.obs` invariant), so observed and unobserved sweeps stay
    bit-identical.  ``position`` is the item's submission index, used
    only to keep trace filenames unique.

    ``config.paths > 1`` routes the item through
    :class:`~repro.multipath.delivery.MultipathSystem` and reports its
    :meth:`~repro.multipath.delivery.MultipathSystem.summary_result`
    (worst-path quality, summed traffic counters, delivery-availability
    metrics); the flight-recorder health timeseries is single-overlay
    machinery and stays off for multipath items.
    """
    # Imported here so a pool started with the "spawn" method can still
    # resolve everything after a bare interpreter boot.
    from repro.obs.export import write_trace
    from repro.obs.health import HealthConfig
    from repro.obs.probe import RecordingProbe
    from repro.sim.runner import make_simulation

    if memo is None:
        memo = _PROCESS_MEMO
    try:
        workload = _workload_for(item, memo)
        config = item.config.with_(seed=item.seed)
        if collect_health and config.health is None and config.paths == 1:
            config = config.with_(health=HealthConfig())
        probe = RecordingProbe() if (collect_obs or trace_dir) else None
        if config.paths > 1:
            from repro.multipath.delivery import MultipathSystem

            system = MultipathSystem(
                workload,
                paths=config.paths,
                seed=config.seed,
                protocol=config.protocol,
                algorithm=config.algorithm,
                faults=config.faults,
                probe=probe,
            )
            system.run(
                max_rounds=config.max_rounds,
                stop_at_convergence=config.stop_at_convergence,
            )
            result = system.summary_result()
            phase_timings: Dict[str, Dict[str, float]] = {}
            health = None
        else:
            # Dispatches on config.time_model: the rounds engine or the
            # continuous one — either way the run is bit-identical
            # between serial and pooled execution (pinned by
            # tests/test_continuous_time.py for the continuous clock).
            simulation = make_simulation(workload, config, probe=probe)
            result = simulation.run()
            phase_timings = simulation.timings.summary()
            health = (
                simulation.health.records()
                if collect_health and simulation.health is not None
                else None
            )
        trace_path = None
        if trace_dir is not None:
            trace_path = _trace_path(trace_dir, position, item)
            write_trace(
                trace_path,
                probe.events,
                phase_timings=phase_timings,
                registry=probe.registry,
                header_extra={
                    "workload": workload.name,
                    "family": item.family,
                    "algorithm": config.algorithm,
                    "oracle": config.oracle,
                    "seed": item.seed,
                    "workload_seed": item.workload_seed,
                    "rounds": result.rounds_run,
                },
                health=health,
            )
        return SweepOutcome(
            item=item,
            result=result,
            counters=probe.registry.snapshot() if collect_obs else None,
            health=health,
            trace_path=trace_path,
        )
    except Exception as error:  # noqa: BLE001 — the contract is "never raise"
        return SweepOutcome(
            item=item,
            error=(
                f"sweep item failed ({item.describe()}): "
                f"{type(error).__name__}: {error}"
            ),
            traceback=traceback.format_exc(),
        )
