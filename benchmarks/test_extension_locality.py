"""§7 extension — locality-context-aware construction.

Shape asserted: the locality-biased O3 oracle builds trees whose edges
are markedly shorter in network distance and mostly intra-domain, at no
convergence cost — the "clients within same domain, ISP or timezone"
improvement the conclusion predicts.
"""

from repro.analysis.reporting import ascii_table
from repro.locality import run_pair

from benchmarks.conftest import run_once

SEEDS = (0, 1, 2)


def test_locality_gradated_construction(benchmark):
    def run_all():
        return [run_pair(population=80, seed=seed) for seed in SEEDS]

    results = run_once(benchmark, run_all)
    rows = []
    plain_distance = local_distance = 0.0
    plain_domain = local_domain = 0.0
    plain_staleness = local_staleness = 0.0
    for pair in results:
        plain, local = pair
        assert plain.converged and local.converged
        for outcome in (plain, local):
            rows.append(
                [
                    outcome.variant,
                    outcome.construction_rounds,
                    outcome.mean_edge_distance,
                    outcome.same_domain_fraction,
                    outcome.mean_delivered_staleness,
                ]
            )
        plain_distance += plain.mean_edge_distance
        local_distance += local.mean_edge_distance
        plain_domain += plain.same_domain_fraction
        local_domain += local.same_domain_fraction
        plain_staleness += plain.mean_delivered_staleness
        local_staleness += local.mean_delivered_staleness
    print()
    print(
        ascii_table(
            [
                "oracle",
                "rounds",
                "mean edge distance",
                "same-domain frac",
                "delivered staleness",
            ],
            rows,
        )
    )
    # Edges at least 1.5x shorter and mostly intra-domain, in aggregate...
    assert local_distance < plain_distance / 1.5
    assert local_domain > 2 * plain_domain
    # ...and the shorter edges pay off as fresher measured deliveries.
    assert local_staleness < plain_staleness
