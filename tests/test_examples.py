"""Smoke tests: every example script runs to completion and prints the
headline it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "construction converged" in out
    assert "100% of consumers" in out


def test_toy_evolution():
    out = run_example("toy_evolution.py")
    assert "--- round 1 ---" in out
    assert "converged in" in out


def test_rss_dissemination():
    out = run_example("rss_dissemination.py")
    assert "LagOver built" in out
    assert "RSS round-trip" in out
    assert "direct polling" in out


def test_churn_resilience():
    out = run_example("churn_resilience.py")
    assert "departures" in out
    assert "satisfaction timeline" in out


def test_oracle_comparison():
    out = run_example("oracle_comparison.py")
    assert "O3" in out
    assert "Random-Delay" in out


def test_extensions_tour():
    out = run_example("extensions_tour.py")
    assert "Locality-gradated" in out
    assert "Multi-feed reuse" in out
    assert "Multipath delivery" in out


@pytest.mark.parametrize(
    "module",
    [
        "repro.experiments.figure2",
        "repro.experiments.figure3",
        "repro.experiments.figure4",
        "repro.experiments.asynchrony",
        "repro.experiments.adversarial",
        "repro.experiments.baselines_experiment",
        "repro.experiments.ablations",
        "repro.experiments.extensions",
    ],
)
def test_experiment_modules_importable(module):
    """The experiment CLIs must at least import and expose main()."""
    import importlib

    mod = importlib.import_module(module)
    assert callable(mod.main)
