"""Regression tests for :class:`repro.sim.churn.ChurnProcess`.

The broader churn behavior (stationary fraction, orphaning, rejoin
state) is covered in ``tests/test_sim.py``; this module pins one
structural property: ``ChurnProcess.step`` iterates over an explicit
snapshot of the roster, so the ``go_offline``/``go_online`` mutations it
performs mid-loop can never skip or double-visit a peer — even if
``Overlay.consumers`` someday returns a live view instead of a copy.
"""

import random

import pytest

from repro.core.tree import Overlay
from repro.sim.churn import ChurnConfig, ChurnProcess

from tests.conftest import spec


class _CountingRandom(random.Random):
    """Random that counts how many membership draws were made."""

    def __init__(self, seed):
        super().__init__(seed)
        self.draws = 0

    def random(self):
        self.draws += 1
        return super().random()


def _overlay(n):
    overlay = Overlay(source_fanout=3)
    for i in range(n):
        overlay.add_consumer(spec(3, 2), f"n{i}")
    return overlay


class TestChurnSnapshot:
    def test_every_peer_is_visited_exactly_once(self):
        """One membership draw per consumer per step — no more, no less.

        With leave probability 1.0 and rejoin probability 1.0 every
        visited peer flips state, which is the worst case for a loop
        that iterates a live roster while mutating it: any skip or
        double-visit would show up either in the draw count or as a peer
        that flipped twice (ending where it started).
        """
        overlay = _overlay(40)
        for node in list(overlay.consumers)[:13]:
            overlay.go_offline(node)
        online_before = {n.node_id for n in overlay.consumers if n.online}
        rng = _CountingRandom(7)
        process = ChurnProcess(
            overlay,
            ChurnConfig(leave_probability=1.0, rejoin_probability=1.0),
            rng,
        )
        events = process.step(0)
        assert rng.draws == 40
        left = {n.node_id for n in events.left}
        rejoined = {n.node_id for n in events.rejoined}
        assert left == online_before
        assert rejoined == {n.node_id for n in overlay.consumers} - online_before
        assert not (left & rejoined)  # nobody flipped twice in one step
        # And the overlay agrees: everyone ended in the opposite state.
        for node in overlay.consumers:
            assert node.online == (node.node_id in rejoined)

    def test_snapshot_is_independent_of_roster_mutation(self):
        """Peers taken offline mid-step by the loop itself stay visited
        from the snapshot, not re-observed in their new state."""
        overlay = _overlay(10)
        rng = _CountingRandom(3)
        process = ChurnProcess(
            overlay,
            ChurnConfig(leave_probability=1.0, rejoin_probability=0.0),
            rng,
        )
        events = process.step(0)
        # All 10 left; had the loop re-observed freshly-offline peers it
        # would have drawn rejoin probabilities for them as well.
        assert rng.draws == 10
        assert len(events.left) == 10
        assert process.total_departures == 10

    def test_start_round_gate_draws_nothing(self):
        overlay = _overlay(5)
        rng = _CountingRandom(3)
        process = ChurnProcess(
            overlay, ChurnConfig(start_round=10), rng
        )
        events = process.step(9)
        assert rng.draws == 0
        assert not events.left and not events.rejoined
