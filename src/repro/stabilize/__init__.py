"""Self-stabilization: convergence from *arbitrary* overlay states.

The simulator normally only visits states reachable by the protocol's
own moves.  This package widens the tested state space to adversarial
ones, in the tradition of self-stabilizing overlay networks (e.g.
Avatar, PAPERS.md): :mod:`repro.stabilize.corrupt` mangles a live
overlay — orphaned subtrees, parent cycles, latency-violating rewires,
stale chain-index entries, offline interior nodes — directly against
either state backend, and :mod:`repro.stabilize.harness` runs the
legitimate local reset (:func:`~repro.stabilize.harness.sanitize`)
followed by ordinary protocol rounds until the overlay passes
``check_integrity()`` and every chain meets its latency constraint,
within an explicit round bound
(:func:`~repro.stabilize.harness.round_bound`).

The property suite in ``tests/test_stabilize.py`` asserts this for
greedy and hybrid across all four oracle realizations and both
backends.
"""

from repro.stabilize.corrupt import (
    CORRUPTION_KINDS,
    corrupt_overlay,
)
from repro.stabilize.harness import (
    SanitizeReport,
    StabilizeOutcome,
    converge,
    round_bound,
    sanitize,
    stabilize,
)

__all__ = [
    "CORRUPTION_KINDS",
    "SanitizeReport",
    "StabilizeOutcome",
    "converge",
    "corrupt_overlay",
    "round_bound",
    "sanitize",
    "stabilize",
]
