"""Figure 2 — variation in convergence of the Greedy algorithm.

Paper: "For the same workload (topological constraint, peer population
and choice of oracle), each variant of the LagOver construction algorithm
has a high variation in the time required to converge.  This is shown
... for the execution of the Greedy algorithm using Oracle Random-Delay
for various workloads."  The consequence is the repeat-5-take-median
protocol used by every other experiment.

We replay one fixed workload draw per family across many seeds (so the
only randomness is the protocol's own interaction order and oracle
choices) and report the per-family spread of construction latency.

Run full scale: ``python -m repro.experiments.figure2``
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import ascii_table, banner
from repro.analysis.stats import Summary, summarize
from repro.experiments.config import FIG2_REPEATS, PAPER, ExperimentProfile
from repro.sim.runner import SimulationConfig, run_simulation
from repro.workloads import PAPER_FAMILIES, make as make_workload

#: The Fig. 2 setting.
ALGORITHM = "greedy"
ORACLE = "random-delay"


def run(
    profile: ExperimentProfile = PAPER,
    repeats: int = FIG2_REPEATS,
    families: Sequence[str] = PAPER_FAMILIES,
) -> Dict[str, Summary]:
    """Per-family spread of construction latency over ``repeats`` seeds."""
    summaries: Dict[str, Summary] = {}
    for family in families:
        workload = make_workload(
            family, size=profile.population, seed=profile.base_seed
        )
        latencies: List[float] = []
        for offset in range(repeats):
            result = run_simulation(
                workload,
                SimulationConfig(
                    algorithm=ALGORITHM,
                    oracle=ORACLE,
                    seed=profile.base_seed + offset,
                    max_rounds=profile.max_rounds,
                ),
            )
            if result.construction_rounds is not None:
                latencies.append(float(result.construction_rounds))
        summaries[family] = summarize(latencies)
    return summaries


def rows(summaries: Dict[str, Summary]) -> List[List[object]]:
    return [
        [
            family,
            summary.n,
            summary.minimum,
            summary.p25,
            summary.median,
            summary.p75,
            summary.maximum,
            summary.spread_ratio,
        ]
        for family, summary in summaries.items()
    ]


HEADERS = ["workload", "runs", "min", "p25", "median", "p75", "max", "max/min"]


def main() -> None:
    print(banner("Figure 2: convergence variation, Greedy + Oracle Random-Delay"))
    summaries = run()
    print(ascii_table(HEADERS, rows(summaries)))
    print(
        "\nShape check: a large max/min spread for a fixed setting is what "
        "motivates the paper's repeat-5-take-median protocol."
    )


if __name__ == "__main__":
    main()
