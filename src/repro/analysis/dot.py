"""Graphviz DOT export of overlay forests.

``render()`` gives a quick ASCII view; this module produces a DOT
document for real visualization (``dot -Tsvg overlay.dot``).  Nodes are
labelled in the paper's ``name_f^l`` notation, coloured by satisfaction
state, with the source as a distinguished box.
"""

from __future__ import annotations

from typing import List

from repro.core.tree import Overlay

_SATISFIED = "#7fbf7f"
_VIOLATED = "#e07a7a"
_UNROOTED = "#bfbfbf"
_OFFLINE = "#efefef"


def _colour(overlay: Overlay, node, delay) -> str:
    if not node.online:
        return _OFFLINE
    if not overlay.is_rooted(node):
        return _UNROOTED
    if delay <= node.latency:
        return _SATISFIED
    return _VIOLATED


def overlay_to_dot(overlay: Overlay, title: str = "LagOver") -> str:
    """Render the overlay (all fragments, offline nodes included) as DOT."""
    lines: List[str] = [
        f'digraph "{title}" {{',
        "  rankdir=TB;",
        '  node [style=filled, fontname="Helvetica"];',
        f'  n0 [label="source 0_{overlay.source.fanout}", shape=box, '
        'fillcolor="#ffd966"];',
    ]
    for node in overlay.consumers:
        delay = overlay.delay_at(node) if node.online else "-"
        lines.append(
            f'  n{node.node_id} [label="{node.label()}\\nd={delay}", '
            f'fillcolor="{_colour(overlay, node, delay)}"];'
        )
    for node in overlay.consumers:
        if node.parent is not None:
            lines.append(f"  n{node.parent.node_id} -> n{node.node_id};")
    lines.append("}")
    return "\n".join(lines)
