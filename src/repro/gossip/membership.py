"""Partial membership views for the unstructured overlay.

Each consumer keeps a small *view* — a cache of other consumers — and
periodically shuffles it with a random view member, the Cyclon-style
exchange used by unstructured P2P systems.  The views are what the random
walkers of :mod:`repro.gossip.random_walk` traverse: together they realize
the paper's Oracle *Random* "using random walkers ... if nodes participate
in an unstructured network" without any global knowledge.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence, Set

from repro.core.errors import ConfigurationError


class MembershipViews:
    """Per-node partial views plus the shuffle protocol."""

    def __init__(self, view_size: int, rng: random.Random) -> None:
        if view_size < 1:
            raise ConfigurationError("view_size must be >= 1")
        self.view_size = view_size
        self.rng = rng
        self._views: Dict[Hashable, Set[Hashable]] = {}

    # ------------------------------------------------------------------

    def bootstrap(self, members: Sequence[Hashable]) -> None:
        """Give every member an initial random view (excluding itself)."""
        members = list(members)
        for member in members:
            others = [m for m in members if m != member]
            size = min(self.view_size, len(others))
            self._views[member] = set(self.rng.sample(others, size))

    def add_member(self, member: Hashable) -> None:
        """Introduce a member, seeding its view from existing members."""
        others = [m for m in self._views if m != member]
        size = min(self.view_size, len(others))
        self._views[member] = set(self.rng.sample(others, size)) if size else set()
        # Make the newcomer reachable: inject it into a few views.
        for other in self.rng.sample(others, min(3, len(others))):
            self._insert(other, member)

    def remove_member(self, member: Hashable) -> None:
        """Forget a departed member everywhere (lazy in real systems;
        eager here to keep the walkers' failure model simple)."""
        self._views.pop(member, None)
        for view in self._views.values():
            view.discard(member)

    def view(self, member: Hashable) -> List[Hashable]:
        """A copy of the member's current view."""
        return sorted(self._views.get(member, ()), key=repr)

    def members(self) -> List[Hashable]:
        return sorted(self._views, key=repr)

    def _insert(self, member: Hashable, entry: Hashable) -> None:
        view = self._views[member]
        view.add(entry)
        while len(view) > self.view_size:
            view.remove(self.rng.choice(sorted(view, key=repr)))

    # ------------------------------------------------------------------

    def shuffle_round(self) -> None:
        """One gossip round: every member trades view halves with a random
        neighbour (both keep each other afterwards, Cyclon-style)."""
        for member in list(self._views):
            view = self._views.get(member)
            if not view:
                continue
            partner = self.rng.choice(sorted(view, key=repr))
            if partner not in self._views:
                view.discard(partner)  # stale entry for a departed node
                continue
            self._exchange(member, partner)

    def _exchange(self, a: Hashable, b: Hashable) -> None:
        half = max(1, self.view_size // 2)
        view_a, view_b = self._views[a], self._views[b]
        offer_a = set(
            self.rng.sample(sorted(view_a, key=repr), min(half, len(view_a)))
        )
        offer_b = set(
            self.rng.sample(sorted(view_b, key=repr), min(half, len(view_b)))
        )
        # Iterate in a stable order: set order varies with the interpreter
        # hash seed and would consume the RNG stream nondeterministically.
        for entry in sorted(offer_a, key=repr):
            if entry != b:
                self._insert(b, entry)
        for entry in sorted(offer_b, key=repr):
            if entry != a:
                self._insert(a, entry)
        self._insert(a, b)
        self._insert(b, a)
        view_a.discard(a)
        view_b.discard(b)
