"""Ablation — what a directory query costs over a real message substrate.

The paper assumes the Oracle answers instantly; the OpenDHT-style
deployment it sketches pays per query: an iterative Chord lookup over a
wide-area network.  This bench measures end-to-end query latency over
the message-passing substrate with coordinate-embedded (triangle-
inequality) link latencies, across service-population sizes.

Shapes asserted: every lookup completes and agrees with the synchronous
router; mean hop count grows logarithmically with the ring size (within
a 2x slack of ``log2``); latency scales with hops.
"""

import math
import random

from repro.analysis.reporting import ascii_table
from repro.dht.chord import ChordRing
from repro.dht.hashspace import hash_key
from repro.dht.remote import measure_lookup_latency
from repro.network.latency import CoordinateLatency
from repro.network.transport import Network
from repro.sim.engine import EventScheduler

from benchmarks.conftest import run_once

RING_SIZES = (8, 16, 32, 64)
QUERIES = 60


def run_sweep():
    rows = {}
    for size in RING_SIZES:
        ring = ChordRing(bits=16)
        for index in range(size):
            ring.add_peer(f"svc-{index}")
        scheduler = EventScheduler()
        network = Network(
            scheduler, CoordinateLatency(random.Random(size), base=0.02, scale=0.1)
        )
        keys = [hash_key(f"q{i}", 16) for i in range(QUERIES)]
        results = measure_lookup_latency(ring, network, scheduler, keys)
        rows[size] = results
    return rows


def test_directory_query_cost(benchmark):
    by_size = run_once(benchmark, run_sweep)
    table = []
    for size, results in by_size.items():
        assert len(results) == QUERIES
        assert all(r.finished_at is not None for r in results)
        mean_hops = sum(r.hops for r in results) / len(results)
        mean_latency = sum(r.latency for r in results) / len(results)
        table.append([size, round(mean_hops, 2), round(mean_latency, 3)])
    print()
    print(
        ascii_table(
            ["service peers", "mean lookup hops", "mean query latency"], table
        )
    )
    hops = {row[0]: row[1] for row in table}
    for size in RING_SIZES:
        assert hops[size] <= 2 * math.log2(size) + 1
    # Bigger rings cost more hops (monotone across the sweep endpoints).
    assert hops[64] > hops[8]
