"""Checked reconfiguration moves shared by the construction algorithms.

The construction protocols of §3 are built from a small vocabulary of
bilateral moves, each written ``try ...`` in the paper's pseudo-code:

* ``try i <- j``            — :func:`try_attach` (*j* becomes *i*'s parent),
* ``try m <- i <- j``       — :func:`try_displace_child` (*i* takes over the
  slot of one of *j*'s children *m* and adopts *m*),
* ``try j <- i <- k``       — :func:`try_insert_between` (*i* slips in
  between *j* and its parent *k*),
* the source-slot displacement ``c <- i <- 0`` of the timeout branch —
  :func:`try_displace_at_source`.

Every function returns ``True`` and applies the move atomically, or returns
``False`` and leaves the overlay untouched.  A move is legal when

1. it is structurally sound (fanout available, no cycle, all parties
   online) — delegated to :class:`repro.core.tree.Overlay`;
2. the *directly repositioned* nodes still meet their (potential) latency
   constraints at their new positions;
3. every newly created consumer-to-consumer edge satisfies the algorithm's
   *edge policy* — the Greedy algorithm's invariant ``l_parent <= l_child``
   (§3.1), or "anything goes" for the Hybrid algorithm.

Deeper descendants whose delay shifts as a side effect are *not* checked:
the paper's protocols are deliberately lazy and leave such transient
violations to the maintenance rules (§3.2).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.node import Node
from repro.core.tree import Overlay

#: An edge policy decides whether a prospective consumer edge
#: ``child <- parent`` is admissible for the algorithm at hand.
EdgePolicy = Callable[[Node, Node], bool]


def any_edge(parent: Node, child: Node) -> bool:
    """Edge policy of the Hybrid algorithm: every edge is admissible."""
    return True


def greedy_edge(parent: Node, child: Node) -> bool:
    """Edge policy of the Greedy algorithm: ``l_parent <= l_child``.

    Edges out of the source are always admissible; among consumers the
    parent's latency constraint must not exceed the child's (§3.1: "The
    greedy algorithm ensures that if i <- j then l_j <= l_i").
    """
    return parent.is_source or parent.latency <= child.latency


def _fits_latency(overlay: Overlay, parent: Node, child: Node) -> bool:
    """Whether ``child``'s potential delay under ``parent`` is within ``l_child``.

    ``delay_at`` is an amortized O(1) chain-index read, so the legality
    checks below add constant overhead per attempted move.
    """
    return overlay.delay_at(parent) + 1 <= child.latency


def _same_fragment(overlay: Overlay, a: Node, b: Node) -> bool:
    return overlay.fragment_root(a) is overlay.fragment_root(b)


def _reject(overlay: Overlay, child: Node, parent: Node, reason: str) -> bool:
    """Emit an :class:`~repro.obs.events.AttachReject` and return False."""
    overlay.probe.attach_reject(child.node_id, parent.node_id, reason)
    return False


def try_attach(
    overlay: Overlay,
    child: Node,
    parent: Node,
    edge_ok: EdgePolicy = any_edge,
) -> bool:
    """``try child <- parent``: attach a parentless node (and its subtree).

    Succeeds when the parent has free fanout, the edge policy admits the
    edge, no cycle would form, and the child's potential delay at the new
    position is within its own latency constraint.
    """
    if not child.online or not parent.online:
        return _reject(overlay, child, parent, "offline")
    if child.parent is not None or child is parent or child.is_source:
        return _reject(overlay, child, parent, "not-parentless")
    if parent.free_fanout <= 0:
        return _reject(overlay, child, parent, "no-fanout")
    if overlay.is_descendant(parent, child):
        return _reject(overlay, child, parent, "cycle")
    if not parent.is_source and not edge_ok(parent, child):
        return _reject(overlay, child, parent, "edge-policy")
    if not _fits_latency(overlay, parent, child):
        return _reject(overlay, child, parent, "latency")
    overlay.attach(child, parent)
    return True


def _displacement_candidates(
    overlay: Overlay,
    incoming: Node,
    parent: Node,
    edge_ok: EdgePolicy,
):
    """Children ``m`` of ``parent`` that ``incoming`` could take over.

    The reconfiguration replaces ``m <- parent`` with
    ``m <- incoming <- parent``; it is legal per child ``m`` when
    ``incoming`` fits at ``parent`` and ``m``'s latency constraint is not
    violated one hop deeper (§3.1: "provided m's latency constraint is not
    violated by the reconfiguration").
    """
    parent_delay = overlay.delay_at(parent)
    for m in parent.children:
        if m is incoming:
            continue
        if parent_delay + 2 > m.latency:
            continue
        if not edge_ok(incoming, m):
            continue
        yield m


def try_displace_child(
    overlay: Overlay,
    incoming: Node,
    parent: Node,
    edge_ok: EdgePolicy = any_edge,
    allow_shed: bool = False,
    allow_orphan: bool = False,
) -> bool:
    """``try m <- incoming <- parent``: take over one child slot of ``parent``.

    ``incoming`` (parentless) becomes a child of ``parent`` in the slot of
    some current child ``m``, and adopts ``m`` as its own child.  Requires
    one unit of free fanout at ``incoming`` to host ``m`` — with
    ``allow_shed``, ``incoming`` may first discard its laxest own child to
    free that unit.  Among the legal candidates the child with the laxest
    latency constraint is displaced — it has the most slack to spare.

    With ``allow_orphan`` (Hybrid only), when no child can be *adopted*,
    a child with a strictly laxer latency constraint than ``incoming``'s
    may be displaced without adoption, restarting construction as a
    fragment root.  This generalizes the timeout branch's source-slot
    rule (``c <- i <- 0`` for ``l_c > l_i``, where the paper likewise
    lets ``c`` go parentless if it cannot be re-homed) to mid-chain
    slots; the strict-laxness guard orders displacements by constraint
    and so rules out displacement cycles.
    """
    if not incoming.online or not parent.online:
        return False
    if incoming.parent is not None or incoming is parent or incoming.is_source:
        return False
    if _same_fragment(overlay, incoming, parent):
        return False
    if not parent.is_source and not edge_ok(parent, incoming):
        return False
    if not _fits_latency(overlay, parent, incoming):
        return False
    can_adopt = incoming.free_fanout > 0 or (allow_shed and incoming.children)
    if can_adopt:
        candidates = list(
            _displacement_candidates(overlay, incoming, parent, edge_ok)
        )
        if candidates:
            victim = max(candidates, key=lambda m: (m.latency, -m.fanout))
            if incoming.free_fanout <= 0:
                shed_one_child(overlay, incoming)
            overlay.detach(victim, reason="displace")
            overlay.attach(incoming, parent)
            overlay.attach(victim, incoming)
            return True
    if not allow_orphan:
        return False
    orphanable = [
        m
        for m in parent.children
        if m is not incoming and m.latency > incoming.latency
    ]
    if not orphanable:
        return False
    victim = max(orphanable, key=lambda m: (m.latency, -m.fanout))
    overlay.detach(victim, reason="displace-orphan")
    victim.rounds_without_parent = 0
    overlay.attach(incoming, parent)
    victim.referral = incoming if incoming.free_fanout > 0 else parent
    overlay.probe.referral(
        victim.node_id, victim.referral.node_id, "displacement"
    )
    return True


def shed_one_child(overlay: Overlay, node: Node) -> Optional[Node]:
    """Discard the child with the laxest latency constraint, freeing a slot.

    Used by the Hybrid moves annotated "i may need to discard one child
    node" (Alg. 2).  The shed child keeps its subtree and restarts
    construction as a fragment root.  Returns the shed child, or ``None``
    if the node has no children.
    """
    if not node.children:
        return None
    victim = max(node.children, key=lambda m: (m.latency, m.free_fanout))
    overlay.detach(victim, reason="shed")
    victim.rounds_without_parent = 0
    return victim


def try_insert_between(
    overlay: Overlay,
    incoming: Node,
    child: Node,
    edge_ok: EdgePolicy = any_edge,
    allow_shed: bool = False,
) -> bool:
    """``try child <- incoming <- parent``: splice ``incoming`` above ``child``.

    ``incoming`` takes ``child``'s slot under ``child``'s current parent and
    adopts ``child``.  Both repositioned nodes must meet their latency
    constraints at the new depths and both new edges must pass the edge
    policy.  With ``allow_shed`` (Hybrid), ``incoming`` may discard one of
    its own children to make room for ``child``.
    """
    parent = child.parent
    if parent is None:
        return False
    if not incoming.online or not child.online or not parent.online:
        return False
    if incoming.parent is not None or incoming.is_source:
        return False
    if incoming is child or incoming is parent:
        return False
    if _same_fragment(overlay, incoming, child):
        return False
    if not parent.is_source and not edge_ok(parent, incoming):
        return False
    if not edge_ok(incoming, child):
        return False
    parent_delay = overlay.delay_at(parent)
    if parent_delay + 1 > incoming.latency:
        return False
    if parent_delay + 2 > child.latency:
        return False
    if incoming.free_fanout <= 0:
        if not allow_shed:
            return False
        if not incoming.children:
            return False
        # Shedding only helps if it actually frees a slot for `child`.
        shed_one_child(overlay, incoming)
    overlay.detach(child, reason="splice")
    overlay.attach(incoming, parent)
    overlay.attach(child, incoming)
    return True


def try_displace_at_source(
    overlay: Overlay,
    incoming: Node,
    victim: Node,
    edge_ok: EdgePolicy = any_edge,
    allow_shed: bool = False,
) -> bool:
    """``try victim <- incoming <- 0``: take over a direct-puller slot.

    Used by the timeout branch of both algorithms ("else if exists c <- 0
    s.t. l_c > l_i then c <- i <- 0") and by the Hybrid interaction with a
    source child.  ``incoming`` replaces ``victim`` as a direct child of
    the source; the move then *tries* to re-home ``victim`` as a child of
    ``incoming`` — but unlike :func:`try_insert_between` the displacement
    stands even if ``victim`` cannot be adopted (it then restarts
    construction as a fragment root, exactly the situation §3.2's
    maintenance discussion anticipates).
    """
    source = overlay.source
    if victim.parent is not source:
        return False
    if not incoming.online or not victim.online:
        return False
    if incoming.parent is not None or incoming is victim or incoming.is_source:
        return False
    if _same_fragment(overlay, incoming, victim):
        return False
    overlay.detach(victim, reason="displace")
    victim.rounds_without_parent = 0
    overlay.attach(incoming, source)
    adopted = False
    if edge_ok(incoming, victim) and _fits_latency(overlay, incoming, victim):
        if incoming.free_fanout <= 0 and allow_shed:
            shed_one_child(overlay, incoming)
        if incoming.free_fanout > 0:
            overlay.attach(victim, incoming)
            adopted = True
    if not adopted:
        victim.referral = incoming
        overlay.probe.referral(victim.node_id, incoming.node_id, "displacement")
    return True
