"""Setup shim.

Kept alongside ``pyproject.toml`` so editable installs also work on
environments whose setuptools/pip combination lacks PEP 660 support
(``pip install -e . --no-use-pep517`` falls back to this file).
"""

from setuptools import setup

setup()
