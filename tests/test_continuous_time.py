"""The continuous-time engine and its geo latency substrate.

Four layers of guarantees, ordered by blast radius:

* **rounds mode is untouched** — golden-seed fingerprints pin that the
  synchronous engine produces bit-identical results before and after
  the continuous-time refactor (``make_simulation`` dispatch, the new
  ``SimulationConfig.time_model`` field, the par-worker rewiring);
* **the geo model is a pure function of (profile, seed)** — hypothesis
  properties for symmetry, positivity, order-independent determinism,
  and the triangle-violation flagging tool;
* **the continuous engine is seeded-deterministic** — repeat runs of
  one config are bit-identical, serial and pooled sweeps agree, and the
  ms-domain result fields behave (populated under a continuous model,
  absent on the rounds clock);
* **the CLI surface holds** — ``repro latency`` and
  ``repro build --time-model`` smokes, including the ms-fault-window
  error path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.faults.plan import parse_fault_plan
from repro.locality.geo import (
    ORACLE_ENDPOINT,
    SOURCE_ENDPOINT,
    GeoLatencyModel,
    GeoProfile,
    PROFILES,
    get_profile,
    profile_names,
)
from repro.sim.churn import ChurnConfig
from repro.sim.continuous import ContinuousSimulation
from repro.sim.runner import SimulationConfig, make_simulation, run_simulation
from repro.sim.timemodel import TimeModel, parse_time_model
from repro.workloads import make as make_workload


# ----------------------------------------------------------------------
# geo substrate properties
# ----------------------------------------------------------------------


class TestGeoModelProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        a=st.integers(min_value=-1, max_value=10_000),
        b=st.integers(min_value=-1, max_value=10_000),
        profile=st.sampled_from(sorted(PROFILES)),
    )
    @settings(max_examples=120, deadline=None)
    def test_one_way_is_symmetric_and_positive(self, seed, a, b, profile):
        model = GeoLatencyModel(get_profile(profile), seed)
        forward = model.one_way_ms(a, b)
        assert forward == model.one_way_ms(b, a)
        assert forward > 0.0
        assert model.rtt_ms(a, b) == 2.0 * forward

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        endpoints=st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        profile=st.sampled_from(sorted(PROFILES)),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_seed_is_deterministic_and_order_independent(
        self, seed, endpoints, profile
    ):
        spec = get_profile(profile)
        forward_order = GeoLatencyModel(spec, seed)
        reverse_order = GeoLatencyModel(spec, seed)
        ordered = [
            forward_order.placement(endpoint) for endpoint in endpoints
        ]
        reversed_ = [
            reverse_order.placement(endpoint)
            for endpoint in reversed(endpoints)
        ]
        assert ordered == list(reversed(reversed_))
        assert forward_order.matrix == reverse_order.matrix

    def test_infrastructure_endpoints_have_no_last_mile(self):
        model = GeoLatencyModel(get_profile("geo-3region"), seed=11)
        for endpoint in (SOURCE_ENDPOINT, ORACLE_ENDPOINT):
            pop, last_mile = model.placement(endpoint)
            assert last_mile == 0.0
            assert pop == model._infra_pop

    def test_triangle_flagging_catches_a_violating_profile(self):
        # A deliberate geometry violation: two cheap legs bridge a
        # 1000 ms direct one, with zero jitter so it is pure geometry.
        violating = GeoProfile(
            name="violating",
            regions=("a", "b", "c"),
            region_weights=(1.0, 1.0, 1.0),
            inter_region_ms={(0, 1): 10.0, (0, 2): 1000.0, (1, 2): 10.0},
            pops_per_region=1,
            jitter=0.0,
        )
        model = GeoLatencyModel(violating, seed=0)
        assert model.triangle_violations(tolerance=0.0) > 0.2
        # ... and tolerance flags strictly less as it loosens.
        strict = model.triangle_violations(tolerance=0.0)
        loose = model.triangle_violations(tolerance=60.0)
        assert loose <= strict
        assert loose == 0.0

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_builtin_profiles_are_sane_at_generous_tolerance(self, seed):
        # Built-in bases are triangle-safe by construction (ring bases /
        # published backbone figures); what a built matrix flags comes
        # from jitter and intra-region spread, and a generous tolerance
        # absorbs all of it.
        for name in profile_names():
            model = GeoLatencyModel(get_profile(name), seed)
            assert model.triangle_violations(tolerance=4.0) == 0.0

    def test_sampling_never_perturbs_the_model(self):
        model = GeoLatencyModel(get_profile("geo-3region"), seed=5)
        before = model.one_way_ms(17, 23)
        samples = model.sample_one_way_ms(200, sample_seed=1)
        assert samples == model.sample_one_way_ms(200, sample_seed=1)
        assert model.one_way_ms(17, 23) == before


# ----------------------------------------------------------------------
# time-model parsing and config validation
# ----------------------------------------------------------------------


class TestTimeModelParsing:
    def test_rounds_is_the_default(self):
        model = parse_time_model("rounds")
        assert model == TimeModel()
        assert not model.continuous

    def test_continuous_with_profile(self):
        model = parse_time_model("continuous:geo-3region")
        assert model.continuous
        assert model.profile == "geo-3region"

    def test_empty_means_the_default(self):
        assert parse_time_model("") == TimeModel()

    @pytest.mark.parametrize(
        "text",
        ["sometime", "continuous", "continuous:", "continuous:nope"],
    )
    def test_rejects_bad_specs(self, text):
        with pytest.raises(ConfigurationError):
            parse_time_model(text)

    def test_config_rejects_continuous_with_asynchrony(self):
        from repro.sim.asynchrony import AsynchronyConfig

        with pytest.raises(ConfigurationError, match="asynchrony"):
            SimulationConfig(
                time_model="continuous:geo-3region",
                asynchrony=AsynchronyConfig(),
            )

    def test_config_rejects_continuous_with_multipath(self):
        with pytest.raises(ConfigurationError, match="single-overlay"):
            SimulationConfig(time_model="continuous:geo-3region", paths=2)


class TestFaultMsWindows:
    def test_ms_tokens_convert_with_the_round_tick(self):
        plan = parse_fault_plan(
            "crash@6000ms:0.2:rejoin=1500ms,source-outage@8000ms:1000ms",
            ms_per_round=100.0,
        )
        crash, outage = plan.specs
        assert crash.round == 60
        assert crash.rejoin_after == 15
        assert outage.round == 80
        assert outage.duration == 10

    def test_ms_windows_floor_at_one_round(self):
        plan = parse_fault_plan("source-outage@20ms:1ms", ms_per_round=100.0)
        assert plan.specs[0].round == 1
        assert plan.specs[0].duration == 1

    def test_ms_without_a_wall_clock_is_an_error(self):
        with pytest.raises(ConfigurationError, match="no wall clock"):
            parse_fault_plan("crash@6000ms:0.2")

    def test_plain_rounds_still_parse_either_way(self):
        with_clock = parse_fault_plan("crash@60:0.2", ms_per_round=100.0)
        without = parse_fault_plan("crash@60:0.2")
        assert with_clock == without


# ----------------------------------------------------------------------
# rounds mode is bit-identical to the pre-refactor engine
# ----------------------------------------------------------------------


def _fingerprint(config: SimulationConfig) -> str:
    workload = make_workload("Rand", size=80, seed=3)
    result = run_simulation(workload, config)
    payload = {
        "converged": result.converged,
        "construction_rounds": result.construction_rounds,
        "rounds_run": result.rounds_run,
        "attaches": result.attaches,
        "detaches": result.detaches,
        "oracle_misses": result.oracle_misses,
        "satisfied_series": result.satisfied_series,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class TestRoundsModeGoldenSeeds:
    """Captured on the pre-refactor engine; a mismatch means the
    continuous-time work changed rounds-mode behaviour."""

    def test_greedy_static(self):
        config = SimulationConfig(
            algorithm="greedy", oracle="random-delay", seed=7, max_rounds=400
        )
        assert _fingerprint(config) == "b8f3ea2c96cc7c76"

    def test_hybrid_under_churn(self):
        config = SimulationConfig(
            algorithm="hybrid",
            oracle="random-delay",
            seed=7,
            max_rounds=120,
            churn=ChurnConfig(),
            stop_at_convergence=False,
        )
        assert _fingerprint(config) == "6f2a65a1233008a6"

    def test_rounds_mode_results_carry_no_ms_fields(self):
        workload = make_workload("Rand", size=40, seed=1)
        result = run_simulation(
            workload, SimulationConfig(seed=1, max_rounds=200)
        )
        assert result.time_model == "rounds"
        assert result.sim_time_ms is None
        assert result.events_fired == 0
        assert result.staleness_ms_p50 is None
        assert result.staleness_ms_p99 is None
        assert result.time_to_recover_ms is None


# ----------------------------------------------------------------------
# the continuous engine
# ----------------------------------------------------------------------

CONTINUOUS = SimulationConfig(
    seed=5, max_rounds=300, time_model="continuous:geo-3region"
)


class TestContinuousEngine:
    def test_dispatch_picks_the_continuous_engine(self):
        workload = make_workload("Rand", size=30, seed=2)
        assert isinstance(
            make_simulation(workload, CONTINUOUS), ContinuousSimulation
        )

    def test_converges_and_reports_ms(self):
        workload = make_workload("Rand", size=60, seed=2)
        result = run_simulation(workload, CONTINUOUS)
        assert result.converged
        assert result.time_model == "continuous:geo-3region"
        profile = get_profile("geo-3region")
        assert result.sim_time_ms == result.rounds_run * profile.round_ms
        assert result.events_fired > 0
        # Staleness = one pull period + transit legs: bounded below by
        # T, and the tail dominates the median.
        assert result.staleness_ms_p50 >= profile.pull_period_ms
        assert result.staleness_ms_p99 >= result.staleness_ms_p50

    def test_repeat_runs_are_bit_identical(self):
        workload = make_workload("Rand", size=60, seed=2)
        first = run_simulation(workload, CONTINUOUS)
        second = run_simulation(workload, CONTINUOUS)
        assert first == second

    def test_seed_changes_the_outcome(self):
        workload = make_workload("Rand", size=60, seed=2)
        other = dataclasses.replace(CONTINUOUS, seed=6)
        first = run_simulation(workload, CONTINUOUS)
        second = run_simulation(workload, other)
        assert (
            first.staleness_ms_p50,
            first.events_fired,
        ) != (second.staleness_ms_p50, second.events_fired)

    def test_fault_recovery_reports_ms(self):
        workload = make_workload("Rand", size=50, seed=4)
        config = dataclasses.replace(
            CONTINUOUS,
            faults=parse_fault_plan("crash@3000ms:0.3", ms_per_round=100.0),
            stop_at_convergence=False,
            max_rounds=120,
        )
        result = run_simulation(workload, config)
        assert result.fault_events > 0
        if result.time_to_recover is not None:
            profile = get_profile("geo-3region")
            assert result.time_to_recover_ms == (
                result.time_to_recover * profile.round_ms
            )

    def test_churn_runs_on_the_continuous_clock(self):
        workload = make_workload("Rand", size=50, seed=4)
        config = dataclasses.replace(
            CONTINUOUS,
            churn=ChurnConfig(),
            stop_at_convergence=False,
            max_rounds=80,
        )
        first = run_simulation(workload, config)
        second = run_simulation(workload, config)
        assert first == second
        assert first.rounds_run == 80


class TestSerialVsPooledSweeps:
    def test_continuous_sweep_is_identical_across_backends(self):
        from repro.par import make_executor, repeat_items

        config = dataclasses.replace(CONTINUOUS, max_rounds=150)
        items = repeat_items("Rand", config, 40, repeats=4, base_seed=0)
        serial = make_executor(0).run(items)
        pooled = make_executor(2).run(items)
        assert [outcome.result for outcome in serial] == [
            outcome.result for outcome in pooled
        ]
        assert all(outcome.ok for outcome in serial)


# ----------------------------------------------------------------------
# the continuous soak
# ----------------------------------------------------------------------


class TestContinuousSoak:
    def test_soak_reports_ms_slos_and_stays_deterministic(self):
        from repro.multifeed.soak import SoakConfig, parse_timeline, run_soak

        config = SoakConfig(
            consumer_count=24,
            rounds=40,
            warmup_rounds=16,
            timeline=parse_timeline("flash@24:news:x2:ramp=2"),
            time_model="continuous:geo-3region",
        )
        first = run_soak(config)
        second = run_soak(config)
        assert first == second
        assert first.time_model == "continuous:geo-3region"
        profile = get_profile("geo-3region")
        for stats in first.feeds:
            assert stats.p50_ms == stats.p50 * profile.pull_period_ms
            assert stats.p99_ms == stats.p99 * profile.pull_period_ms

    def test_rounds_soak_carries_no_ms_fields(self):
        from repro.multifeed.soak import SoakConfig, run_soak

        summary = run_soak(
            SoakConfig(consumer_count=24, rounds=30, warmup_rounds=12)
        )
        assert summary.time_model == "rounds"
        assert summary.time_to_recover_ms is None
        assert all(stats.p99_ms is None for stats in summary.feeds)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestContinuousCli:
    def test_latency_inspector(self, capsys):
        from repro.cli import main

        assert main(["latency", "--profile", "geo-3region"]) == 0
        out = capsys.readouterr().out
        assert "profile geo-3region" in out
        assert "triangle inequality" in out

    def test_latency_list(self, capsys):
        from repro.cli import main

        assert main(["latency", "--list"]) == 0
        out = capsys.readouterr().out
        for name in profile_names():
            assert name in out

    def test_build_continuous_reports_ms(self, capsys):
        from repro.cli import main

        code = main(
            [
                "build",
                "--size",
                "40",
                "--time-model",
                "continuous:geo-3region",
                "--max-rounds",
                "300",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "staleness p50 (ms)" in out
        assert "geo-3region" in out

    def test_build_rejects_unknown_profile(self):
        # Configuration errors propagate out of build, as for bad fault
        # plans (pinned in tests/test_faults.py).
        from repro.cli import main

        with pytest.raises(ConfigurationError, match="unknown latency"):
            main(["build", "--time-model", "continuous:nope"])

    def test_build_rejects_ms_faults_without_continuous(self):
        from repro.cli import main

        with pytest.raises(ConfigurationError, match="no wall clock"):
            main(["build", "--size", "30", "--faults", "crash@500ms:0.2"])

    def test_latency_rejects_unknown_profile(self, capsys):
        from repro.cli import main

        assert main(["latency", "--profile", "nope"]) == 2
        assert "unknown latency profile" in capsys.readouterr().err
