#!/usr/bin/env python
"""Chaos soak: sustained fault injection at scale, plus a backoff A/B.

A thin CLI wrapper over the registered ``chaos_soak.soak`` and
``chaos_soak.backoff_ab`` benchmarks (:mod:`repro.bench.suites.chaos` —
the measurement logic lives there; this script keeps the historical
flags and the historical ``BENCH_chaos_soak.json`` output path).

``soak``
    A long run (default: N=500 consumers, hybrid × Oracle Random-Delay)
    under a layered fault plan — a 20 % correlated crash whose victims
    rejoin as a burst, a source outage, and a stale oracle view — with
    ``Overlay.check_integrity()`` asserted every ``k`` rounds.  Churn is
    off in the soak: at this population the paper's churn keeps a
    handful of peers orphaned every round, so full re-convergence — the
    recovery criterion — would never be observable.  The soak fails if
    the overlay never re-converges after the last fault or if any
    integrity check trips.

``backoff A/B``
    A mass-crash-and-rejoin burst landing in the middle of a source
    outage — the thundering-herd scenario — run twice, with and without
    the exponential source-contact backoff (``ProtocolConfig.
    source_backoff``).  Counts per-round source contacts in the
    contention window: backoff must strictly reduce the load on the
    source while initial convergence must not regress.  The two arms
    are independent seeded runs, so ``--workers 2`` fans them out
    through :mod:`repro.par`.

The output file merges the two records' legacy payloads into the
historical ``BENCH_chaos_soak.json`` shape (with the normalized
``repro.bench/v1`` envelope alongside; see docs/BENCHMARKS.md), and the
run appends one compact line per benchmark to ``BENCH_HISTORY.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/chaos_soak.py
    PYTHONPATH=src python benchmarks/chaos_soak.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (  # noqa: E402
    RunnerConfig,
    append_history,
    legacy_view,
    load_suites,
    run_benchmark,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--population",
        type=int,
        default=None,
        help="consumers (default 500; 120 with --quick)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--algorithm", default="hybrid")
    parser.add_argument("--oracle", default="random-delay")
    parser.add_argument(
        "--max-rounds",
        type=int,
        default=None,
        help="soak length (default 320; 220 with --quick)",
    )
    parser.add_argument(
        "--crash-round",
        type=int,
        default=None,
        help="round the layered plan starts (default 100; 40 with "
        "--quick); later faults are offsets",
    )
    parser.add_argument(
        "--integrity-every",
        type=int,
        default=10,
        help="assert Overlay.check_integrity() every k rounds",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=40,
        help="rounds after the rejoin burst over which the A/B counts "
        "source contacts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan the two A/B arms out through a repro.par process pool "
        "(0 = serial)",
    )
    parser.add_argument(
        "--output", default="BENCH_chaos_soak.json", help="JSON results path"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale (N=120, shorter run) instead of the full soak",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to BENCH_HISTORY.jsonl",
    )
    args = parser.parse_args(argv)

    registry = load_suites()
    options = {
        "population": args.population,
        "max_rounds": args.max_rounds,
        "crash_round": args.crash_round,
        "seed": args.seed,
        "algorithm": args.algorithm,
        "oracle": args.oracle,
        "integrity_every": args.integrity_every,
        "window": args.window,
    }
    config = RunnerConfig(
        quick=args.quick, workers=args.workers, options=options
    )

    population = args.population or (120 if args.quick else 500)
    max_rounds = args.max_rounds or (220 if args.quick else 320)
    print(
        f"chaos soak: N={population} rounds={max_rounds} "
        f"{args.algorithm} x {args.oracle}, layered fault plan",
        flush=True,
    )
    soak_record = run_benchmark(registry.get("chaos_soak.soak"), config)
    soak = soak_record["detail"]["soak"]
    recover = soak["time_to_recover"]
    print(
        f"  soak: {soak['fault_events']} faults, availability "
        f"{soak['availability']:.1%}, time-to-recover "
        f"{recover if recover is not None else 'NEVER'}, "
        f"{soak['integrity_checks']} integrity checks clean "
        f"({soak['seconds']:.2f}s)",
        flush=True,
    )
    for failure in soak_record["failures"]:
        print(f"FATAL: {failure}", file=sys.stderr)
    if soak_record["failures"]:
        return 1

    burst_crash = soak_record["detail"]["crash_round"] + 20
    print(
        f"backoff A/B: 40% crash @ {burst_crash} rejoining as a burst "
        f"into a source outage, {args.window}-round contention window",
        flush=True,
    )
    ab_record = run_benchmark(registry.get("chaos_soak.backoff_ab"), config)
    ab = ab_record["detail"]
    baseline, hardened = ab["baseline"], ab["backoff"]
    for label, run in (("baseline", baseline), ("backoff", hardened)):
        if run is None:
            continue
        print(
            f"  {label:8s}: {run['contacts_in_window']:5d} source contacts "
            f"in window ({run['repeat_contacts_in_window']} repeats, peak "
            f"{run['peak_contacts_per_round']}/round, "
            f"{run['failures_in_window']} failed), converged at round "
            f"{run['converged_round']}",
            flush=True,
        )
    for failure in ab_record["failures"]:
        print(f"FATAL: {failure}", file=sys.stderr)

    # The historical BENCH_chaos_soak.json shape: one document holding
    # both halves, with the A/B's legacy envelope reconstructed.
    report = legacy_view(soak_record)
    report["backoff_ab"] = {
        "window": ab["window"],
        "baseline": baseline,
        "backoff": hardened,
        "contact_reduction": ab["contact_reduction"],
    }
    report["backoff_ab_metrics"] = ab_record["metrics"]
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    if not args.no_history:
        append_history("BENCH_HISTORY.jsonl", [soak_record, ab_record])
    if not ab_record["failures"] and ab["contact_reduction"] is not None:
        print(
            f"  backoff shed {ab['contact_reduction']:.0%} of repeat source "
            f"contacts -> {args.output}"
        )
    else:
        print(f"  -> {args.output}")
    return 1 if ab_record["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
