"""Feed dissemination over a built LagOver.

This is the payoff of the whole construction: the source's direct
children pull every ``T`` time units (staggered), and every consumer
pushes fresh items to its overlay children after a per-hop forwarding
delay of at most one unit.  A node at depth ``d`` therefore observes
staleness at most ``d * T`` — exactly the ``DelayAt`` model the
construction algorithms plan with, now *measured* instead of assumed.

The engine runs on the discrete-event scheduler, reads the overlay's
current parent links at each forwarding step (so it can also be run over
an overlay that is still evolving), and produces a
:class:`~repro.feeds.staleness.StalenessReport` comparing each consumer's
measured worst staleness with its declared constraint ``l_i``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.core.node import Node
from repro.core.tree import Overlay
from repro.feeds.client import FeedConsumer
from repro.feeds.items import FeedItem
from repro.feeds.source import FeedSource
from repro.feeds.staleness import StalenessReport, build_report
from repro.sim.engine import EventScheduler


class LagOverDissemination:
    """Drives pulls and pushes over an overlay for a span of feed time.

    Parameters
    ----------
    overlay / source:
        The built (or still evolving) LagOver and the pull-only source.
    pull_period:
        ``T`` — the delay unit of the whole paper; direct children pull
        once per period.
    hop_delay_range:
        Per-hop forwarding delay, drawn uniformly, as a *fraction of T*;
        the default ``(0.25, 1.0)`` keeps every hop within one delay unit,
        matching the +1-per-hop accounting of §2.1.3.
    tracer:
        An optional :class:`~repro.obs.trace.SpanRecorder`; when set,
        every delivery edge (the direct child's pull, every push hop) is
        recorded as a span so per-consumer staleness can be decomposed
        exactly.  The tracer never consumes RNG and never changes what
        is delivered when.
    """

    def __init__(
        self,
        overlay: Overlay,
        source: FeedSource,
        rng: random.Random,
        pull_period: float = 1.0,
        hop_delay_range: tuple = (0.25, 1.0),
        hop_delay_model=None,
        tracer=None,
    ) -> None:
        if pull_period <= 0:
            raise ConfigurationError("pull_period must be > 0")
        low, high = hop_delay_range
        if not 0 < low <= high <= 1.0:
            raise ConfigurationError(
                "hop delays must satisfy 0 < low <= high <= 1 (in units of T)"
            )
        self.overlay = overlay
        self.source = source
        self.rng = rng
        self.pull_period = pull_period
        self.hop_delay_range = hop_delay_range
        #: Optional callable ``(parent, child) -> delay in units of T``
        #: (clamped to (0, 1]); overrides the uniform draw so hop delays
        #: can follow real network distance (see
        #: :func:`repro.locality.distance_hop_delay`).
        self.hop_delay_model = hop_delay_model
        self.tracer = tracer
        self.scheduler = EventScheduler()
        self.consumers: Dict[int, FeedConsumer] = {
            node.node_id: FeedConsumer(node.node_id)
            for node in overlay.consumers
        }
        self.pushes = 0
        self.pulls = 0
        self._active_pullers: set = set()

    # ------------------------------------------------------------------

    def _hop_delay(self, parent: Node, child: Node) -> float:
        if self.hop_delay_model is not None:
            units = self.hop_delay_model(parent, child)
            units = min(1.0, max(1e-6, units))
            return self.pull_period * units
        low, high = self.hop_delay_range
        return self.pull_period * self.rng.uniform(low, high)

    def _pull_loop(self, node: Node) -> None:
        """One pull by a direct child, then reschedule the next one."""
        if not (node.online and node.parent is self.overlay.source):
            # Lost the direct slot (churn or reconfiguration): the loop
            # dies; a later start_direct_pullers() call can resurrect it.
            self._active_pullers.discard(node.node_id)
            return
        consumer = self.consumers[node.node_id]
        self.pulls += 1
        served = self.source.pull(
            self.scheduler.now, since_seq=consumer.last_seen_seq
        )
        if served is not None:
            items, _ = served
            fresh = consumer.deliver(items, self.scheduler.now)
            if fresh:
                if self.tracer is not None:
                    self.tracer.record_pull(
                        node.node_id, fresh, self.scheduler.now
                    )
                self._push_downstream(node, fresh)
        self.scheduler.schedule(self.pull_period, self._pull_loop, node)

    def _push_downstream(self, node: Node, items: List[FeedItem]) -> None:
        for child in list(node.children):
            self.scheduler.schedule(
                self._hop_delay(node, child),
                self._deliver_push,
                child,
                items,
                node.node_id,
                self.scheduler.now,
            )

    def _deliver_push(
        self,
        child: Node,
        items: List[FeedItem],
        parent_id: int,
        sent_at: float,
    ) -> None:
        if not child.online:
            return
        self.pushes += 1
        consumer = self.consumers[child.node_id]
        fresh = consumer.deliver(items, self.scheduler.now)
        if fresh:
            if self.tracer is not None:
                self.tracer.record_push(
                    parent_id, child.node_id, fresh, sent_at, self.scheduler.now
                )
            self._push_downstream(child, fresh)

    # ------------------------------------------------------------------

    def ensure_consumer(self, node_id: int) -> FeedConsumer:
        """The delivery log for a node, created on first sight.

        Overlays can grow *while* dissemination runs (flash-crowd
        joiners in the service soak); late arrivals get an empty log the
        moment they enter, so every subsequent delivery is recorded.
        """
        consumer = self.consumers.get(node_id)
        if consumer is None:
            consumer = self.consumers[node_id] = FeedConsumer(node_id)
        return consumer

    def start_direct_pullers(self) -> int:
        """Schedule pull loops for direct children that do not have one.

        Idempotent: safe to call repeatedly (e.g. once per period while
        the overlay evolves under churn) — only children without an
        active loop are started, staggered across one period.
        """
        started = 0
        for node in list(self.overlay.source.children):
            if node.node_id in self._active_pullers:
                continue
            self._active_pullers.add(node.node_id)
            offset = self.rng.uniform(0, self.pull_period)
            self.scheduler.schedule(offset, self._pull_loop, node)
            started += 1
        return started

    def run(self, duration: float) -> StalenessReport:
        """Run ``duration`` feed-time units and report staleness."""
        self.start_direct_pullers()
        self.scheduler.run_until(duration)
        return self.report()

    def report(self) -> StalenessReport:
        """Build the staleness report for the items delivered so far."""
        return build_report(
            self.overlay,
            self.consumers,
            pull_period=self.pull_period,
            published=self.source.latest_seq,
        )


def disseminate(
    overlay: Overlay,
    source: Optional[FeedSource] = None,
    duration: float = 50.0,
    seed: int = 0,
    pull_period: float = 1.0,
    tracer=None,
    hop_delay_model=None,
) -> StalenessReport:
    """Convenience one-shot: run dissemination over a built overlay.

    ``hop_delay_model`` passes through to
    :class:`LagOverDissemination` — the continuous-time mode supplies
    :func:`repro.sim.continuous.hop_delay_from_geo` here so every push
    hop (and so every recorded delivery span) carries the latency
    substrate's per-edge milliseconds instead of a uniform draw.
    """
    if source is None:
        source = FeedSource()
    engine = LagOverDissemination(
        overlay,
        source,
        random.Random(seed),
        pull_period=pull_period,
        tracer=tracer,
        hop_delay_model=hop_delay_model,
    )
    return engine.run(duration)
