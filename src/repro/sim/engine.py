"""A small discrete-event engine.

The construction protocol runs on a synchronous round clock
(:mod:`repro.sim.runner`), but the substrates — the message-passing
network, the DHT, the gossip layer, feed dissemination — are naturally
event-driven: messages arrive after heterogeneous latencies, pulls fire
periodically, items publish at random times.  This engine provides the
classic timestamp-ordered event queue those substrates schedule against.

No wall-clock, no threads: time is a float the engine advances from event
to event, so runs are fully deterministic given deterministic callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.core.errors import ConfigurationError


class EventHandle:
    """Returned by :meth:`EventScheduler.schedule`; allows cancellation."""

    __slots__ = ("time", "sequence", "callback", "cancelled", "fired", "_scheduler")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[[], None],
        scheduler: Optional["EventScheduler"] = None,
    ):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired).

        Keeps the owning scheduler's live pending counter exact:
        cancelling an already-cancelled or already-fired handle is a
        no-op, so the counter is decremented at most once per event.
        """
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._pending -= 1


class EventScheduler:
    """Timestamp-ordered event execution with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._fired = 0
        self._pending = 0

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` from now."""
        if delay < 0:
            raise ConfigurationError(f"cannot schedule into the past ({delay})")
        bound = (lambda: callback(*args)) if args else callback
        handle = EventHandle(self.now + delay, next(self._sequence), bound, self)
        heapq.heappush(self._queue, (handle.time, handle.sequence, handle))
        self._pending += 1
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule at an absolute time (must not be in the past)."""
        return self.schedule(time - self.now, callback, *args)

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        O(1): a live counter maintained on schedule/cancel/fire, not a
        scan of the heap (cancelled entries linger there until popped).
        """
        return self._pending

    @property
    def fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Fire the next event; returns ``False`` if none remained."""
        while self._queue:
            _, _, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = handle.time
            handle.fired = True
            self._pending -= 1
            self._fired += 1
            handle.callback()
            return True
        return False

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Fire every event with timestamp <= ``time``; advance now to it."""
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            fired += 1
            if fired > max_events:
                raise ConfigurationError(
                    f"run_until({time}) exceeded {max_events} events; "
                    "likely a self-rescheduling loop with zero delay"
                )
        self.now = max(self.now, time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Fire all events until the queue drains (bounded by max_events)."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise ConfigurationError(
                    f"run() exceeded {max_events} events; "
                    "likely an unbounded event cascade"
                )
