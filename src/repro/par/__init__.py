"""``repro.par`` — the parallel seed-sweep execution engine.

Every experiment in the reproduction is a repeat-K-take-median seed
sweep; this package fans those embarrassingly parallel `(family,
config, seed)` items out to a process pool while guaranteeing results
**bit-identical to the serial path** — each worker rebuilds its
workload and RNG streams from the item's seed exactly as
``run_repeats`` always has, and outcomes merge in deterministic
submission order.  See ``docs/PARALLEL.md`` for the executor model,
the determinism contract, and the observability merge semantics.

Quick use::

    from repro.par import ProcessPoolSweepExecutor, repeat_items

    items = repeat_items("BiCorr", SimulationConfig(), 120, repeats=20)
    outcomes = ProcessPoolSweepExecutor(workers=4).run(items)

or pass ``executor=`` to ``run_repeats`` / the ``figure*.run`` grids,
or use ``repro sweep --workers N`` from the command line.
"""

from repro.par.executor import (
    ProcessPoolSweepExecutor,
    SerialExecutor,
    SweepExecutor,
    make_executor,
)
from repro.par.items import (
    MedianOfRuns,
    SweepItem,
    SweepOutcome,
    Task,
    TaskOutcome,
    median_of_outcomes,
    repeat_items,
)
from repro.par.merge import (
    FAILED_RUNS_COUNTER,
    MERGED_RUNS_COUNTER,
    merge_outcome_counters,
    merge_outcome_health,
)
from repro.par.worker import execute_item

__all__ = [
    "FAILED_RUNS_COUNTER",
    "MERGED_RUNS_COUNTER",
    "MedianOfRuns",
    "ProcessPoolSweepExecutor",
    "SerialExecutor",
    "SweepExecutor",
    "SweepItem",
    "SweepOutcome",
    "Task",
    "TaskOutcome",
    "execute_item",
    "make_executor",
    "median_of_outcomes",
    "merge_outcome_counters",
    "merge_outcome_health",
    "repeat_items",
]
