"""Beyond the paper — population scalability of the construction process.

The paper's evaluation fixes 120 peers.  This bench sweeps the
population and reports construction latency (rounds) for both
algorithms on the Rand family.  Measured shape: both algorithms converge
at every scale, but rounds grow super-linearly for Greedy at large
populations — with the latency range fixed (1..10), bigger populations
mean proportionally more strict-latency peers fighting over the same few
shallow slots, and Greedy insists on resolving every such conflict by
strict ordering.  Hybrid, free to park strict peers under any
deep-enough high-fanout node, scales several times better — the Fig. 4
advantage widens with population size.
"""

import statistics

from repro.analysis.reporting import ascii_table
from repro.sim.runner import SimulationConfig, run_simulation
from repro.workloads import make as make_workload

from benchmarks.conftest import run_once

POPULATIONS = (60, 120, 240, 480)
SEEDS = (1, 2, 3)


def run_sweep():
    grid = {}
    for algorithm in ("greedy", "hybrid"):
        for population in POPULATIONS:
            values = []
            for seed in SEEDS:
                workload = make_workload("Rand", size=population, seed=seed)
                result = run_simulation(
                    workload,
                    SimulationConfig(
                        algorithm=algorithm, seed=seed, max_rounds=12_000
                    ),
                )
                values.append(result.construction_rounds)
            grid[(algorithm, population)] = values
    return grid


def test_population_scalability(benchmark):
    grid = run_once(benchmark, run_sweep)
    rows = []
    for algorithm in ("greedy", "hybrid"):
        for population in POPULATIONS:
            values = grid[(algorithm, population)]
            assert None not in values, f"{algorithm}@{population} got stuck"
            rows.append([algorithm, population, statistics.median(values)])
    print()
    print(ascii_table(["algorithm", "population", "median rounds"], rows))
    greedy_large = statistics.median(grid[("greedy", POPULATIONS[-1])])
    hybrid_large = statistics.median(grid[("hybrid", POPULATIONS[-1])])
    # Hybrid's advantage widens with scale.
    assert hybrid_large < greedy_large
    # And hybrid stays within a small multiple of linear scaling.
    hybrid_small = statistics.median(grid[("hybrid", POPULATIONS[0])])
    scale = POPULATIONS[-1] / POPULATIONS[0]
    assert hybrid_large <= 2 * scale * max(hybrid_small, 10)
