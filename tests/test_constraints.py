"""Unit tests for repro.core.constraints (NodeSpec and the paper notation)."""

import pytest

from repro.core.constraints import (
    NodeSpec,
    parse_population,
    parse_spec,
    total_fanout,
)
from repro.core.errors import InvalidConstraintError


class TestNodeSpec:
    def test_valid_spec_roundtrips_fields(self):
        s = NodeSpec(latency=3, fanout=2)
        assert s.latency == 3
        assert s.fanout == 2

    def test_zero_fanout_is_legal(self):
        assert NodeSpec(latency=3, fanout=0).fanout == 0

    def test_latency_zero_rejected(self):
        with pytest.raises(InvalidConstraintError):
            NodeSpec(latency=0, fanout=1)

    def test_negative_latency_rejected(self):
        with pytest.raises(InvalidConstraintError):
            NodeSpec(latency=-1, fanout=1)

    def test_negative_fanout_rejected(self):
        with pytest.raises(InvalidConstraintError):
            NodeSpec(latency=1, fanout=-1)

    def test_non_integer_latency_rejected(self):
        with pytest.raises(InvalidConstraintError):
            NodeSpec(latency=1.5, fanout=1)

    def test_bool_rejected_despite_being_int_subclass(self):
        with pytest.raises(InvalidConstraintError):
            NodeSpec(latency=True, fanout=1)

    def test_specs_are_hashable_and_comparable(self):
        a = NodeSpec(latency=1, fanout=2)
        b = NodeSpec(latency=1, fanout=2)
        assert a == b
        assert hash(a) == hash(b)
        assert NodeSpec(latency=1, fanout=1) < NodeSpec(latency=2, fanout=0)

    def test_label_uses_paper_notation(self):
        assert NodeSpec(latency=1, fanout=2).label("a") == "a_2^1"


class TestParsing:
    def test_parse_spec_paper_notation(self):
        name, s = parse_spec("a_2^1")
        assert name == "a"
        assert s == NodeSpec(latency=1, fanout=2)

    def test_parse_spec_strips_whitespace(self):
        assert parse_spec("  j_2^4 ")[0] == "j"

    def test_parse_spec_rejects_garbage(self):
        with pytest.raises(InvalidConstraintError):
            parse_spec("a^1_2")

    def test_parse_spec_rejects_missing_latency(self):
        with pytest.raises(InvalidConstraintError):
            parse_spec("a_2")

    def test_parse_population_fig1_consumers(self):
        text = "a_2^1, b_2^3, c_2^3, d_2^1, e_2^2, f_2^3, g_2^3, h_2^3, i_2^3, j_2^4"
        population = parse_population(text)
        assert len(population) == 10
        assert population[0] == ("a", NodeSpec(latency=1, fanout=2))
        assert population[-1] == ("j", NodeSpec(latency=4, fanout=2))

    def test_parse_population_whitespace_separated(self):
        assert len(parse_population("a_1^1 b_1^2")) == 2

    def test_label_parse_roundtrip(self):
        original = NodeSpec(latency=7, fanout=4)
        name, parsed = parse_spec(original.label("x9"))
        assert name == "x9"
        assert parsed == original


def test_total_fanout_sums():
    specs = [NodeSpec(latency=1, fanout=2), NodeSpec(latency=2, fanout=0)]
    assert total_fanout(specs) == 2
    assert total_fanout([]) == 0
