"""Oracle services (§2.1.4): omniscient and distributed realizations."""

from repro.oracles.base import (
    ORACLES,
    Oracle,
    RandomCapacityOracle,
    RandomDelayCapacityOracle,
    RandomDelayOracle,
    RandomOracle,
    make_oracle,
    oracle_names,
)

__all__ = [
    "ORACLES",
    "Oracle",
    "RandomCapacityOracle",
    "RandomDelayCapacityOracle",
    "RandomDelayOracle",
    "RandomOracle",
    "make_oracle",
    "oracle_names",
]
