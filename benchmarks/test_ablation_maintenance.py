"""Ablation — lazy maintenance (paper) vs knee-jerk detaching (§3.2).

§3.2: immediately discarding parents "will not only waste a lot of the
past interactions and the structure built therefrom, but also ... cause a
larger than necessary dynamicity".  Shapes asserted: the knee-jerk
variants pay for it — more structural churn (detaches), and no speedup.
"""

from repro.analysis.reporting import ascii_table
from repro.experiments import ablations

from benchmarks.conftest import BENCH, run_once


def test_lazy_beats_kneejerk_maintenance(benchmark):
    rows = run_once(benchmark, ablations.maintenance_comparison, profile=BENCH)
    print()
    print(ascii_table(ablations.MAINTENANCE_HEADERS, rows))

    by_variant = {row[0]: row for row in rows}
    for variant in ("greedy", "hybrid"):
        lazy = by_variant[variant]
        eager = by_variant[f"{variant}-eager"]
        assert lazy[1] is not None, f"{variant} (lazy) got stuck"
        # Knee-jerk never helps: it costs structural churn, rounds, or both.
        eager_stuck = eager[1] is None
        more_churn = eager[3] > lazy[3]
        slower = (not eager_stuck) and eager[1] >= lazy[1] * 0.9
        assert eager_stuck or more_churn or slower, (
            f"{variant}: knee-jerk unexpectedly dominated lazy maintenance"
        )
    # And at least one algorithm shows a clear churn penalty.
    assert (
        by_variant["hybrid-eager"][3] > by_variant["hybrid"][3]
        or by_variant["greedy-eager"][3] > by_variant["greedy"][3]
    )
