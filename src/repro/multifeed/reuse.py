"""The reuse-biased oracle: exploit intersecting consumers across feeds.

Among delay-qualified candidates (the O3 filter), prefer — with
probability ``reuse_bias`` — partners the enquirer is *already* adjacent
to in another feed's tree.  A partnership that carries two feeds costs
one network relationship instead of two, which is the §7 "reusing part
of the LagOver for multiple sources" saving.

The biased branch draws from a *dedicated* seeded stream
(``reuse-bias/<feed>``, like the fault injector's ``faults`` stream),
never from the partner-selection stream: with ``reuse_bias=0.0`` the
oracle's selection sequence is bit-identical to a plain
:class:`~repro.oracles.base.RandomDelayOracle` on the same stream
(regression-pinned in ``tests/test_multifeed.py``).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.core.node import Node
from repro.core.tree import Overlay
from repro.oracles.base import Oracle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multifeed.system import MultiFeedSystem


class ReuseDelayOracle(Oracle):
    """Oracle Random-Delay with cross-feed partnership preference."""

    name = "reuse-delay"
    figure_label = "O3R"

    def __init__(
        self,
        overlay: Overlay,
        rng: random.Random,
        system: "MultiFeedSystem",
        feed_id: str,
        reuse_bias: float = 0.8,
        bias_rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(overlay, rng)
        self.system = system
        self.feed_id = feed_id
        self.reuse_bias = reuse_bias
        # The reuse-bias coin flips come from their own seeded stream
        # (``reuse-bias/<feed>``), like :mod:`repro.faults` keeps fault
        # draws off the protocol streams: whether a familiar partner
        # happens to exist (a cross-feed, state-dependent accident) must
        # never perturb the partner-*selection* stream, or soak runs
        # would not be bit-reproducible against an unbiased twin.
        if bias_rng is None:
            bias_rng = system.streams.get(f"reuse-bias/{feed_id}")
        self.bias_rng = bias_rng
        #: How many samples were served from the cross-feed partner set.
        self.reuse_hits = 0

    def _admits(self, enquirer: Node, candidate: Node) -> bool:
        return self.overlay.delay_at(candidate) < enquirer.latency

    def sample(self, enquirer: Node) -> Optional[Node]:
        # Delay filter via O(1) chain-index reads (see Oracle.sample).
        admits = self._admits
        candidates = [
            node
            for node in self.overlay.online_consumers
            if node is not enquirer and admits(enquirer, node)
        ]
        if not candidates:
            self.misses += 1
            return None
        self.hits += 1
        known = self.system.partners_elsewhere(enquirer.name, self.feed_id)
        familiar = [node for node in candidates if node.name in known]
        if familiar and self.bias_rng.random() < self.reuse_bias:
            self.reuse_hits += 1
            return self.bias_rng.choice(familiar)
        return self.rng.choice(candidates)


def reuse_oracle_factory(reuse_bias: float = 0.8):
    """An :data:`~repro.multifeed.system.OracleFactory` building
    :class:`ReuseDelayOracle` instances."""

    def factory(system, feed_id, overlay, rng):
        return ReuseDelayOracle(
            overlay, rng, system, feed_id, reuse_bias=reuse_bias
        )

    return factory
