"""Shared execution helpers for the figure experiments.

Both helpers accept an ``executor=`` (any :class:`repro.par.SweepExecutor`)
and default to the serial reference backend; passing a
:class:`repro.par.ProcessPoolSweepExecutor` fans the repeats out to
worker processes with bit-identical results (the :mod:`repro.par`
determinism contract, pinned by ``tests/test_par.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stats import MedianOfRuns
from repro.par.executor import SerialExecutor, SweepExecutor
from repro.par.items import SweepItem, median_of_outcomes, repeat_items
from repro.par.worker import execute_item
from repro.sim.runner import SimulationConfig, SimulationResult


def resolve_executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    """``None`` means the serial reference backend."""
    return executor if executor is not None else SerialExecutor()


def run_repeats(
    family: str,
    config: SimulationConfig,
    population: int,
    repeats: int,
    base_seed: int = 0,
    vary_workload: bool = True,
    executor: Optional[SweepExecutor] = None,
) -> MedianOfRuns:
    """Run ``repeats`` constructions and collect construction latencies.

    Each repeat uses its own root seed; with ``vary_workload`` the
    workload draw varies with the seed too (representing the *family*),
    otherwise one fixed draw is built once and replayed every repeat
    (isolating protocol randomness, as in Fig. 2).

    A repeat whose run raises counts as a failed (non-converged) cell
    entry rather than aborting the sweep — see
    :func:`repro.par.items.median_of_outcomes`.
    """
    items = repeat_items(
        family,
        config,
        population,
        repeats,
        base_seed=base_seed,
        vary_workload=vary_workload,
    )
    return median_of_outcomes(resolve_executor(executor).run(items))


def run_single(
    family: str,
    config: SimulationConfig,
    population: int,
    seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> SimulationResult:
    """One construction run of a family (workload seed = run seed).

    With the default serial executor this runs in-process; an executor
    is accepted for symmetry so callers can route even single runs
    through a pool (e.g. to isolate a crash-prone configuration).
    """
    item = SweepItem(
        family=family, config=config, population=population, seed=seed
    )
    if executor is None:
        outcome = execute_item(item)
    else:
        outcome = executor.run([item])[0]
    if outcome.error is not None:
        raise RuntimeError(outcome.error)
    return outcome.result
