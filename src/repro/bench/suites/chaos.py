"""Chaos benchmarks: the layered-fault soak and the backoff A/B.

The registry port of ``benchmarks/chaos_soak.py`` (now a thin CLI
wrapper over this module).  Two registered benchmarks:

``chaos_soak.soak``
    A long run under a layered fault plan — a 20 % correlated crash
    whose victims rejoin as a burst, a source outage, and a stale
    oracle view — with ``Overlay.check_integrity()`` asserted every
    ``k`` rounds.  Hard-fails if the overlay never re-converges after
    the last fault (integrity violations raise inside the run).

``chaos_soak.backoff_ab``
    A mass-crash-and-rejoin burst landing inside a source outage — the
    thundering herd — run with and without the exponential
    source-contact backoff.  Hard-fails if backoff stops shedding
    repeat source contacts or regresses initial convergence beyond the
    allowed slack.  The two arms are independent seeded runs, so
    ``workers`` ≥ 2 fans them out through :mod:`repro.par`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.bench.registry import BenchContext, BenchResult, Metric, register
from repro.core.protocol import ProtocolConfig
from repro.faults import FaultPlan, MassCrash, SourceOutage, StaleOracleView
from repro.obs import RecordingProbe
from repro.par import Task, make_executor
from repro.sim.runner import Simulation, SimulationConfig
from repro.workloads.random_workload import rand_workload


def run_soak(
    population: int,
    seed: int,
    algorithm: str,
    oracle: str,
    max_rounds: int,
    crash_round: int,
    integrity_every: int,
) -> dict:
    """One long run under the layered fault plan; integrity-checked."""
    plan = FaultPlan.of(
        MassCrash(round=crash_round, fraction=0.2, rejoin_after=20),
        SourceOutage(round=crash_round + 90, duration=12),
        StaleOracleView(round=crash_round + 160, duration=15, staleness=6),
    )
    workload, _ = rand_workload(size=population, seed=seed, source_fanout=4)
    config = SimulationConfig(
        algorithm=algorithm,
        oracle=oracle,
        seed=seed,
        faults=plan,
        max_rounds=max_rounds,
        stop_at_convergence=False,
    )
    simulation = Simulation(workload, config)
    start = time.perf_counter()
    integrity_checks = 0
    while simulation.now < max_rounds:
        simulation.run_round()
        if simulation.now % integrity_every == 0:
            simulation.overlay.check_integrity()
            integrity_checks += 1
    elapsed = time.perf_counter() - start
    result = simulation.result()
    return {
        "plan": [
            "mass-crash 20% + rejoin burst",
            "source outage",
            "stale oracle view",
        ],
        "rounds": result.rounds_run,
        "seconds": elapsed,
        "rounds_per_sec": result.rounds_run / elapsed,
        "integrity_checks": integrity_checks,
        "fault_events": result.fault_events,
        "availability": result.availability,
        "time_to_recover": result.time_to_recover,
        "recovery_series": result.recovery_series,
        "departures": result.departures,
        "rejoins": result.rejoins,
        "satisfied_fraction": result.final_quality.satisfied_fraction,
    }


def run_burst(
    population: int,
    seed: int,
    algorithm: str,
    oracle: str,
    crash_round: int,
    rejoin_after: int,
    window: int,
    backoff: bool,
) -> dict:
    """One mass-crash-and-rejoin run; returns source-contact pressure.

    The rejoin burst lands inside a source outage, so every herd member
    keeps failing its direct contact — the scenario the backoff
    hardening exists for.  Without backoff each one re-hammers the
    source every ``timeout`` rounds for the whole outage.
    """
    rejoin_round = crash_round + rejoin_after
    plan = FaultPlan.of(
        MassCrash(round=crash_round, fraction=0.4, rejoin_after=rejoin_after),
        SourceOutage(round=rejoin_round, duration=window),
    )
    workload, _ = rand_workload(size=population, seed=seed, source_fanout=4)
    probe = RecordingProbe()
    config = SimulationConfig(
        algorithm=algorithm,
        oracle=oracle,
        seed=seed,
        protocol=ProtocolConfig(source_backoff=backoff),
        faults=plan,
        max_rounds=crash_round + rejoin_after + window,
        stop_at_convergence=False,
        probe=probe,
    )
    simulation = Simulation(workload, config)
    result = simulation.run()
    contacts = probe.events_of("source-contact")
    in_window = [
        e for e in contacts if rejoin_round <= e.round < rejoin_round + window
    ]
    per_round: Dict[int, int] = {}
    per_node: Dict[object, int] = {}
    for event in in_window:
        per_round[event.round] = per_round.get(event.round, 0) + 1
        per_node[event.node] = per_node.get(event.node, 0) + 1
    return {
        "backoff": backoff,
        "converged_round": result.construction_rounds,
        "contacts_total": len(contacts),
        "contacts_in_window": len(in_window),
        "peak_contacts_per_round": max(per_round.values()) if per_round else 0,
        # Contacts beyond each node's first: the re-hammering that backoff
        # exists to shed.  (A node's *first* failing contact is unavoidable
        # load either way, and which nodes end up herding varies between
        # the two runs once their trajectories diverge.)
        "repeat_contacts_in_window": sum(c - 1 for c in per_node.values()),
        "failures_in_window": sum(
            1 for e in in_window if e.outcome in ("reject", "outage")
        ),
        "time_to_recover": result.time_to_recover,
    }


def run_backoff_ab(
    population: int,
    seed: int,
    algorithm: str,
    oracle: str,
    crash_round: int,
    window: int,
    workers: int = 0,
) -> Tuple[dict, dict, List[str]]:
    """Both A/B arms plus the script's pass/fail checks."""
    burst_args = (
        population, seed, algorithm, oracle, crash_round, 10, window,
    )
    arms = make_executor(workers).run_tasks(
        [
            Task(run_burst, burst_args + (False,), label="baseline"),
            Task(run_burst, burst_args + (True,), label="backoff"),
        ]
    )
    failures: List[str] = []
    for arm in arms:
        if not arm.ok:
            failures.append(f"A/B arm failed: {arm.error}")
    if failures:
        return {}, {}, failures
    baseline, hardened = arms[0].value, arms[1].value
    if not (
        hardened["repeat_contacts_in_window"]
        < baseline["repeat_contacts_in_window"]
    ):
        failures.append(
            "backoff did not reduce repeat source contacts in the rejoin window"
        )
    # Convergence happens before the fault fires, so the hardened run may
    # only differ through backoff on ordinary construction-time rejects;
    # allow a small slack but fail on a real regression.
    if baseline["converged_round"] is not None:
        slack = max(5, baseline["converged_round"] // 4)
        if hardened["converged_round"] is None:
            failures.append("backoff run failed to converge at all")
        elif hardened["converged_round"] > baseline["converged_round"] + slack:
            failures.append(
                "backoff regressed initial convergence beyond the allowed slack"
            )
    return baseline, hardened, failures


def _scale(ctx: BenchContext) -> Tuple[int, int, int]:
    """(population, max_rounds, crash_round) at the context's scale."""
    if ctx.quick:
        defaults = (120, 220, 40)
    else:
        defaults = (500, 320, 100)
    return (
        int(ctx.opt("population", defaults[0])),
        int(ctx.opt("max_rounds", defaults[1])),
        int(ctx.opt("crash_round", defaults[2])),
    )


@register(
    "chaos_soak.soak",
    tags=("faults", "resilience", "perf"),
    metrics={
        "rounds_per_sec": Metric(
            unit="rounds/s",
            higher_is_better=True,
            tolerance=0.35,
            description="fault-injected round throughput",
        ),
        "availability": Metric(
            higher_is_better=True,
            tolerance=0.0,
            deterministic=True,
            description="fraction of node-rounds satisfied (seeded, exact)",
        ),
        "time_to_recover": Metric(
            unit="rounds",
            higher_is_better=False,
            tolerance=0.0,
            deterministic=True,
            description="rounds from last fault to full re-convergence",
        ),
    },
    description="Layered fault-plan soak with periodic integrity checks",
)
def chaos_soak_soak(ctx: BenchContext) -> BenchResult:
    population, max_rounds, crash_round = _scale(ctx)
    seed = int(ctx.opt("seed", 0))
    algorithm = str(ctx.opt("algorithm", "hybrid"))
    oracle = str(ctx.opt("oracle", "random-delay"))
    integrity_every = int(ctx.opt("integrity_every", 10))
    soak = run_soak(
        population, seed, algorithm, oracle, max_rounds, crash_round,
        integrity_every,
    )
    failures: Tuple[str, ...] = ()
    metrics = {
        "rounds_per_sec": soak["rounds_per_sec"],
        "availability": soak["availability"],
    }
    if soak["time_to_recover"] is None:
        failures = ("soak never re-converged after its faults",)
    else:
        metrics["time_to_recover"] = float(soak["time_to_recover"])
    detail = {
        "benchmark": "chaos_soak",
        "population": population,
        "max_rounds": max_rounds,
        "crash_round": crash_round,
        "seed": seed,
        "algorithm": algorithm,
        "oracle": oracle,
        "soak": soak,
    }
    return BenchResult(metrics=metrics, detail=detail, failures=failures)


@register(
    "chaos_soak.backoff_ab",
    tags=("faults", "resilience", "hardening"),
    metrics={
        "contact_reduction": Metric(
            higher_is_better=True,
            tolerance=0.0,
            deterministic=True,
            description="share of repeat source contacts shed by backoff",
        ),
        "repeat_contacts_backoff": Metric(
            higher_is_better=False,
            tolerance=0.0,
            deterministic=True,
            description="repeat contacts in the window, hardened arm",
        ),
        "peak_contacts_per_round": Metric(
            higher_is_better=False,
            tolerance=0.0,
            deterministic=True,
            description="worst per-round source load, hardened arm",
        ),
    },
    description="Thundering-herd A/B: source-contact backoff on vs off",
)
def chaos_backoff_ab(ctx: BenchContext) -> BenchResult:
    population, _, crash_round = _scale(ctx)
    seed = int(ctx.opt("seed", 0))
    algorithm = str(ctx.opt("algorithm", "hybrid"))
    oracle = str(ctx.opt("oracle", "random-delay"))
    window = int(ctx.opt("window", 40))
    # The backoff run converges a little later than the baseline (first
    # failures double the retry delay during construction too), so the
    # A/B's crash lands a bit after the soak's to stay post-convergence
    # in both modes.
    burst_crash = crash_round + 20
    baseline, hardened, failures = run_backoff_ab(
        population, seed, algorithm, oracle, burst_crash, window,
        workers=ctx.workers,
    )
    metrics = {}
    contact_reduction = None
    if baseline and hardened:
        if baseline["repeat_contacts_in_window"]:
            contact_reduction = (
                1
                - hardened["repeat_contacts_in_window"]
                / baseline["repeat_contacts_in_window"]
            )
            metrics["contact_reduction"] = contact_reduction
        metrics["repeat_contacts_backoff"] = float(
            hardened["repeat_contacts_in_window"]
        )
        metrics["peak_contacts_per_round"] = float(
            hardened["peak_contacts_per_round"]
        )
    detail = {
        "benchmark": "chaos_soak.backoff_ab",
        "population": population,
        "crash_round": burst_crash,
        "seed": seed,
        "algorithm": algorithm,
        "oracle": oracle,
        "window": window,
        "baseline": baseline or None,
        "backoff": hardened or None,
        "contact_reduction": contact_reduction,
    }
    return BenchResult(metrics=metrics, detail=detail, failures=tuple(failures))
