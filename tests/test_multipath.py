"""Tests for the v2 multipath-delivery extension (§7).

Covers the enforced-disjointness guarantee (edge policy + oracle +
overlap repair), fault-plan composition across paths, system-level
recovery metrics, the resilience payoff at equal fanout budget, and the
golden-seed determinism guards (backend equality and serial-vs-pooled
sweep equality).
"""

import dataclasses

import pytest

from repro.core.errors import ConfigurationError
from repro.faults import parse_fault_plan
from repro.multipath import (
    DisjointDelayOracle,
    MultipathSystem,
    delivery_under_failures,
)
from repro.par import ProcessPoolSweepExecutor, SerialExecutor, repeat_items
from repro.sim.runner import SimulationConfig, SimulationResult
from repro.workloads import make as make_workload

RESULT_FIELDS = [
    f.name for f in dataclasses.fields(SimulationResult) if f.compare
]


def built_system(paths=2, seed=1, size=40, **kwargs):
    workload = make_workload("Rand", size=size, seed=seed)
    system = MultipathSystem(workload, paths=paths, seed=seed, **kwargs)
    assert system.run(max_rounds=4000)
    return system


def interior_chain(overlay, node):
    """Interior names of the node's chain (strict ancestors, no source)."""
    names = set()
    current = node.parent
    while current is not None and not current.is_source:
        names.add(current.name)
        current = current.parent
    return names


def assert_vertex_disjoint(system):
    """No consumer's chains share an interior node across any two paths."""
    for name, _ in system.workload.population:
        chains = [
            interior_chain(system.overlays[p], system._nodes[p][name])
            for p in range(system.paths)
        ]
        for q in range(1, system.paths):
            for p in range(q):
                assert not (chains[p] & chains[q]), (
                    f"{name}: paths {p}/{q} share {chains[p] & chains[q]}"
                )


class TestConstruction:
    def test_all_paths_converge_vertex_disjoint(self):
        system = built_system(paths=2, seed=2)
        assert system.all_converged()
        for overlay in system.overlays:
            overlay.check_integrity()
            assert overlay.is_converged()
        assert_vertex_disjoint(system)

    def test_three_paths_converge_vertex_disjoint(self):
        system = built_system(paths=3, seed=2)
        assert_vertex_disjoint(system)

    def test_path_latency_relaxation(self):
        workload = make_workload("Rand", size=20, seed=2)
        system = MultipathSystem(workload, paths=3, seed=2)
        base = {name: spec.latency for name, spec in workload.population}
        for path, nodes in enumerate(system._nodes):
            for name, node in nodes.items():
                # Path p relaxes by p; sufficiency repair may relax more.
                assert node.latency >= base[name] + path

    def test_fanout_budget_split_across_paths(self):
        workload = make_workload("Rand", size=20, seed=2)
        for paths in (2, 3):
            system = MultipathSystem(workload, paths=paths, seed=2)
            for name, spec in workload.population:
                allocated = sum(
                    system._nodes[p][name].fanout for p in range(paths)
                )
                assert allocated == spec.fanout

    def test_invalid_configs(self):
        workload = make_workload("Rand", size=10, seed=1)
        with pytest.raises(ConfigurationError):
            MultipathSystem(workload, paths=0)
        with pytest.raises(ConfigurationError):
            MultipathSystem(workload, paths=2, algorithm="nope")
        with pytest.raises(ConfigurationError):
            MultipathSystem(workload, paths=2, faults="crash@10:0.2")

    def test_single_path_has_no_repairs(self):
        system = built_system(paths=1, seed=1)
        assert system.overlap_repairs == 0
        assert system.unblock_repairs == 0


class TestDisjointnessEnforcement:
    def test_edge_policy_rejects_other_path_upstream(self):
        system = built_system(paths=2, seed=3)
        rejected = 0
        for path in range(2):
            edge_ok = system.algorithms[path].edge_ok
            for name, _ in system.workload.population:
                child = system._nodes[path][name]
                for blocked_name in system.upstream_elsewhere(name, path):
                    parent = system._nodes[path][blocked_name]
                    assert not edge_ok(parent, child)
                    rejected += 1
        assert rejected > 0  # the guarantee was actually exercised

    def test_oracle_never_samples_blocked_candidates(self):
        system = built_system(paths=2, seed=3)
        for path in range(2):
            oracle = system.oracles[path].inner
            assert isinstance(oracle, DisjointDelayOracle)
            for name, _ in system.workload.population[:10]:
                enquirer = system._nodes[path][name]
                blocked = system.upstream_elsewhere(name, path)
                for _ in range(10):
                    sampled = oracle.sample(enquirer)
                    if sampled is None:
                        continue
                    chain = interior_chain(system.overlays[path], sampled)
                    chain.add(sampled.name)
                    assert not (chain & blocked)

    def test_overlap_repair_detaches_higher_path(self):
        system = built_system(paths=2, seed=4)
        # Manufacture an overlap behind the policy's back: re-home a
        # consumer's path-1 parent pointer onto its path-0 parent's twin.
        for name, _ in system.workload.population:
            node0 = system._nodes[0][name]
            node1 = system._nodes[1][name]
            if node0.parent is None or node0.parent.is_source:
                continue
            twin = system._nodes[1][node0.parent.name]
            if node1.parent is twin or system.overlays[1].delay_at(twin) == 0:
                continue
            if twin.free_fanout < 1:
                continue
            if node1.parent is not None:
                system.overlays[1].detach(node1, reason="test")
            system.overlays[1].attach(node1, twin)
            repaired = system._repair_overlaps()
            assert repaired >= 1
            assert node1.parent is None  # higher path lost
            assert node0.parent is not None  # lower path kept
            return
        pytest.skip("no manufacturable overlap on this draw")


class TestChainQueries:
    def test_chain_alive_no_failures(self):
        system = built_system(paths=2)
        name = system.workload.population[0][0]
        assert system.chain_alive(name, 0, failed=set())

    def test_failed_consumer_delivers_nothing(self):
        system = built_system(paths=2)
        name = system.workload.population[0][0]
        assert not system.chain_alive(name, 0, failed={name})

    def test_failed_ancestor_kills_chain(self):
        system = built_system(paths=1)
        for name, node in system._nodes[0].items():
            if node.parent is not None and not node.parent.is_source:
                assert not system.chain_alive(
                    name, 0, failed={node.parent.name}
                )
                return
        pytest.skip("tree is a star; no mid-chain consumer")

    def test_upstream_elsewhere_reports_other_path_ancestors(self):
        system = built_system(paths=2)
        for name, _ in system.workload.population:
            reported = system.upstream_elsewhere(name, 1)
            assert reported == interior_chain(
                system.overlays[0], system._nodes[0][name]
            )


class TestFaultComposition:
    PLAN = "crash@60:0.2:rejoin=15"

    def faulted_system(self, seed=0, size=60, paths=2):
        workload = make_workload("Rand", size=size, seed=seed)
        system = MultipathSystem(
            workload,
            paths=paths,
            seed=seed,
            faults=parse_fault_plan(self.PLAN),
        )
        system.run(max_rounds=300)
        return system

    def test_crash_hits_every_path_and_rejoins(self):
        system = self.faulted_system()
        result = system.result()
        assert result.fault_events == 2  # crash + mass-rejoin
        # After the rejoin window every twin is back online everywhere.
        for path in range(system.paths):
            assert all(
                node.online for node in system._nodes[path].values()
            )

    def test_recovery_metrics(self):
        system = self.faulted_system()
        result = system.result()
        assert 0.0 < result.delivery_availability <= 1.0
        assert result.time_to_recover is not None
        assert len(result.delivery_recovery_series) == len(
            system._system_fault_rounds
        )
        # Final-state histogram over consumers: after the rejoin window
        # every consumer is back to both paths rooted.
        assert sum(result.paths_surviving.values()) == len(
            system.overlays[0].online_consumers
        )
        assert result.paths_surviving == {2: 60}

    def test_per_path_results(self):
        system = self.faulted_system()
        result = system.result()
        assert len(result.per_path) == 2
        for path, per in enumerate(result.per_path):
            assert isinstance(per, SimulationResult)
            assert per.oracle == f"disjoint-delay/{path}"
            assert per.fault_events == result.fault_events

    def test_summary_result_shape(self):
        system = self.faulted_system()
        result = system.result()
        summary = system.summary_result()
        assert summary.oracle == "disjoint-delay"
        assert summary.availability == pytest.approx(
            result.delivery_availability
        )
        assert summary.attaches == sum(p.attaches for p in result.per_path)
        assert summary.fault_events == result.fault_events


class TestDeterminism:
    """Golden-seed guards: backends and executors must agree exactly."""

    def run_once(self, backend=None):
        workload = make_workload("Rand", size=30, seed=5)
        system = MultipathSystem(
            workload,
            paths=2,
            seed=5,
            backend=backend,
            faults=parse_fault_plan("crash@40:0.2:rejoin=10"),
        )
        system.run(max_rounds=200)
        return system.result()

    def assert_results_equal(self, left, right):
        assert left.converged == right.converged
        assert left.construction_rounds == right.construction_rounds
        assert left.delivery_availability == right.delivery_availability
        assert left.paths_surviving == right.paths_surviving
        assert left.delivery_recovery_series == right.delivery_recovery_series
        assert left.time_to_recover == right.time_to_recover
        assert left.overlap_repairs == right.overlap_repairs
        for p_left, p_right in zip(left.per_path, right.per_path):
            for name in RESULT_FIELDS:
                assert getattr(p_left, name) == getattr(p_right, name), name

    def test_same_seed_reproduces(self):
        self.assert_results_equal(self.run_once(), self.run_once())

    def test_columnar_equals_objects(self):
        self.assert_results_equal(
            self.run_once(backend="columnar"), self.run_once(backend="objects")
        )

    def test_serial_equals_pooled_sweep(self):
        config = SimulationConfig(
            algorithm="hybrid",
            oracle="random-delay",
            max_rounds=2000,
            paths=2,
        )
        items = repeat_items("Rand", config, 25, 2, base_seed=0)
        serial = SerialExecutor().run(items)
        pooled = ProcessPoolSweepExecutor(2).run(items)
        assert len(serial) == len(pooled) == 2
        for left, right in zip(serial, pooled):
            assert left.error is None and right.error is None
            assert left.result.oracle == "disjoint-delay"
            for name in RESULT_FIELDS:
                assert getattr(left.result, name) == getattr(
                    right.result, name
                ), name


class TestResilience:
    def test_no_failures_full_delivery(self):
        workload = make_workload("Rand", size=30, seed=3)
        rows = delivery_under_failures(
            workload, paths=2, failure_fractions=[0.0], seed=3
        )
        assert rows[0].delivered_fraction == 1.0
        assert rows[0].mean_surviving_paths == pytest.approx(2.0)

    def test_delivery_degrades_with_failures(self):
        workload = make_workload("Rand", size=40, seed=4)
        rows = delivery_under_failures(
            workload, paths=2, failure_fractions=[0.05, 0.3], seed=4
        )
        assert rows[0].delivered_fraction > rows[1].delivered_fraction

    def test_two_paths_beat_one_at_equal_budget(self):
        """The acceptance criterion: k=2 strictly above k=1 at every
        failed fraction in [0.1, 0.3], same total fanout budget."""
        workload = make_workload("Rand", size=40, seed=2)
        single = delivery_under_failures(
            workload, paths=1, failure_fractions=[0.1, 0.3], seed=2, trials=5
        )
        double = delivery_under_failures(
            workload, paths=2, failure_fractions=[0.1, 0.3], seed=2, trials=5
        )
        for one, two in zip(single, double):
            assert two.delivered_fraction > one.delivered_fraction
            assert two.mean_surviving_paths > one.mean_surviving_paths
