"""Unit tests for the §4.1 workload generators."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.sufficiency import sufficiency_holds
from repro.sim.rng import make_stream
from repro.workloads import (
    PAPER_FAMILIES,
    adversarial_workload,
    bicorr_workload,
    bimodal_population,
    biuncorr_workload,
    make,
    make_workload,
    paper_adversarial_workload,
    rand_workload,
    repair_population,
    tf1_population,
    tf1_workload,
)
from repro.workloads.bimodal import HIGH_FANOUTS, LOW_FANOUTS, STRICT_LATENCY_BOUND

from tests.conftest import spec


class TestWorkloadBase:
    def test_build_overlay_matches_population(self):
        workload = make_workload(
            "w", 2, [("a", spec(1, 1)), ("b", spec(2, 2))]
        )
        overlay = workload.build_overlay()
        assert len(overlay.consumers) == 2
        assert overlay.source.fanout == 2
        assert all(n.parent is None for n in overlay.consumers)

    def test_histograms(self):
        workload = make_workload(
            "w", 1, [("a", spec(1, 1)), ("b", spec(1, 2)), ("c", spec(3, 2))]
        )
        assert workload.latency_histogram() == {1: 2, 3: 1}
        assert workload.fanout_histogram() == {1: 1, 2: 2}

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            make_workload("w", 1, [])

    def test_describe_mentions_name_and_size(self):
        workload = make_workload("mywl", 1, [("a", spec(1, 1))])
        assert "mywl" in workload.describe()
        assert "n=1" in workload.describe()


class TestTf1:
    def test_tier_structure_120(self):
        population = tf1_population(120, fanout=3)
        latencies = [s.latency for _, s in population]
        assert latencies.count(1) == 3
        assert latencies.count(2) == 9
        assert latencies.count(3) == 27
        assert latencies.count(4) == 81
        assert all(s.fanout == 3 for _, s in population)

    def test_partial_last_tier(self):
        population = tf1_population(5, fanout=3)
        latencies = [s.latency for _, s in population]
        assert latencies == [1, 1, 1, 2, 2]

    def test_tf1_meets_sufficiency_exactly(self):
        workload = tf1_workload(120)
        assert workload.satisfies_sufficiency()
        assert workload.source_fanout == 3

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            tf1_population(0)


class TestRand:
    def test_repaired_to_sufficiency(self):
        for seed in range(5):
            workload, report = rand_workload(size=80, seed=seed)
            assert workload.satisfies_sufficiency()
            assert report.relaxations >= 0

    def test_deterministic_per_seed(self):
        a, _ = rand_workload(size=50, seed=3)
        b, _ = rand_workload(size=50, seed=3)
        assert a.population == b.population

    def test_different_seeds_differ(self):
        a, _ = rand_workload(size=50, seed=3)
        b, _ = rand_workload(size=50, seed=4)
        assert a.population != b.population

    def test_fanout_bounds_respected(self):
        workload, _ = rand_workload(size=60, seed=1, min_fanout=2, max_fanout=5)
        assert all(2 <= s.fanout <= 5 for s in workload.specs)


class TestBimodal:
    def test_bicorr_strict_nodes_have_low_fanout(self):
        rng = make_stream(0, "t")
        population = bimodal_population(200, rng, correlated=True)
        for _, s in population:
            if s.latency < STRICT_LATENCY_BOUND:
                assert s.fanout in LOW_FANOUTS

    def test_fanouts_are_bimodal(self):
        rng = make_stream(0, "t")
        population = bimodal_population(200, rng, correlated=False)
        assert all(
            s.fanout in LOW_FANOUTS + HIGH_FANOUTS for _, s in population
        )

    def test_biuncorr_strict_nodes_can_be_high(self):
        rng = make_stream(1, "t")
        population = bimodal_population(400, rng, correlated=False)
        strict_high = [
            s
            for _, s in population
            if s.latency < STRICT_LATENCY_BOUND and s.fanout in HIGH_FANOUTS
        ]
        assert strict_high  # uncorrelated draw produces some

    def test_workloads_meet_sufficiency(self):
        for seed in range(3):
            for factory in (bicorr_workload, biuncorr_workload):
                workload, _ = factory(size=120, seed=seed)
                assert workload.satisfies_sufficiency()


class TestRepair:
    def test_repair_fixes_overfull_class(self):
        population = [(f"n{i}", spec(1, 1)) for i in range(5)]
        repaired, report = repair_population(1, population, random.Random(1))
        assert sufficiency_holds(1, [s for _, s in repaired])
        assert report.relaxations > 0

    def test_repair_noop_for_feasible(self):
        population = [("a", spec(1, 2)), ("b", spec(2, 0))]
        repaired, report = repair_population(1, population, random.Random(1))
        assert report.relaxations == 0
        assert repaired == population

    def test_repair_preserves_fanouts_and_size(self):
        population = [(f"n{i}", spec(1, 2)) for i in range(10)]
        repaired, _ = repair_population(2, population, random.Random(1))
        assert len(repaired) == 10
        assert [s.fanout for _, s in repaired] == [2] * 10

    def test_repair_divergence_guard(self):
        population = [(f"n{i}", spec(1, 0)) for i in range(5)]
        with pytest.raises(ConfigurationError):
            repair_population(1, population, random.Random(1), max_relaxations=50)


class TestAdversarial:
    def test_repaired_population_specs(self):
        workload = adversarial_workload()
        assert workload.size == 5
        assert workload.source_fanout == 1
        assert not workload.satisfies_sufficiency()

    def test_paper_verbatim_population_kept_for_the_record(self):
        workload = paper_adversarial_workload()
        labels = [s.label(n) for n, s in workload.population]
        assert labels == ["1_1^1", "2_1^2", "3_2^4", "4_1^3", "5_0^3"]


class TestCatalog:
    def test_all_families_buildable(self):
        for family in PAPER_FAMILIES:
            workload = make(family, size=40, seed=0)
            assert workload.size >= 5

    def test_adversarial_in_catalog(self):
        assert make("Adversarial").size == 5

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            make("Zipf")
