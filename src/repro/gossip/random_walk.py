"""Random walkers over the membership views.

A walker starts at the enquirer and takes ``length`` uniform steps over
the current views; the node it lands on is the sample.  Sufficiently long
walks over a well-mixed view graph approximate uniform sampling of the
live population — the distributed realization of Oracle *Random*.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from repro.core.errors import ConfigurationError
from repro.gossip.membership import MembershipViews

#: Default walk length; views of size ~8 mix well within this many steps.
DEFAULT_WALK_LENGTH = 6


class RandomWalkSampler:
    """Samples members by random walks over :class:`MembershipViews`."""

    def __init__(
        self,
        views: MembershipViews,
        rng: random.Random,
        walk_length: int = DEFAULT_WALK_LENGTH,
    ) -> None:
        if walk_length < 1:
            raise ConfigurationError("walk_length must be >= 1")
        self.views = views
        self.rng = rng
        self.walk_length = walk_length
        self.walks = 0
        self.failed_walks = 0

    def walk(self, start: Hashable) -> Optional[Hashable]:
        """One walk from ``start``; returns the landing member or ``None``.

        A walk fails (returns ``None``) when it reaches a member with an
        empty view, or would end on the enquirer itself — the enquirer
        then simply retries next round, like an Oracle miss.
        """
        self.walks += 1
        current = start
        for _ in range(self.walk_length):
            view = self.views.view(current)
            if not view:
                self.failed_walks += 1
                return None
            current = self.rng.choice(view)
        if current == start:
            self.failed_walks += 1
            return None
        return current
