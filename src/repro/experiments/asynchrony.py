"""The asynchronous-interaction experiment (§5.3, closing paragraph).

"We conducted further experiments where peers interacted asynchronously,
i.e. different peers need different amount of time to complete the
interactions.  Asynchrony slowed down the overlay construction, but
interestingly did not affect the eventual convergence to a LagOver."

We compare synchronous construction against interactions whose durations
are drawn uniformly from 1..4 rounds, for both algorithms.

Run full scale: ``python -m repro.experiments.asynchrony``
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import ascii_table, banner
from repro.analysis.stats import MedianOfRuns
from repro.experiments.config import PAPER, ExperimentProfile
from repro.experiments.runner import resolve_executor
from repro.par.executor import SweepExecutor
from repro.par.items import median_of_outcomes, repeat_items
from repro.sim.asynchrony import AsynchronyConfig
from repro.sim.runner import SimulationConfig

GridKey = Tuple[str, str]  # (algorithm, regime)

FAMILY = "Rand"
REGIMES = ("sync", "async 1-4")
ALGORITHMS = ("greedy", "hybrid")


def run(
    profile: ExperimentProfile = PAPER,
    family: str = FAMILY,
    executor: Optional[SweepExecutor] = None,
) -> Dict[GridKey, MedianOfRuns]:
    keys = [
        (algorithm, regime) for algorithm in ALGORITHMS for regime in REGIMES
    ]
    work = []
    for algorithm, regime in keys:
        asynchrony = AsynchronyConfig(1, 4) if regime != "sync" else None
        work.extend(
            repeat_items(
                family,
                SimulationConfig(
                    algorithm=algorithm,
                    oracle="random-delay",
                    max_rounds=profile.max_rounds,
                    asynchrony=asynchrony,
                ),
                profile.population,
                profile.repeats,
                base_seed=profile.base_seed,
            )
        )
    outcomes = resolve_executor(executor).run(work)
    grid: Dict[GridKey, MedianOfRuns] = {}
    for index, key in enumerate(keys):
        chunk = outcomes[index * profile.repeats : (index + 1) * profile.repeats]
        grid[key] = median_of_outcomes(chunk)
    return grid


def rows(grid: Dict[GridKey, MedianOfRuns]) -> List[List[object]]:
    return [
        [algorithm] + [grid[(algorithm, regime)].render() for regime in REGIMES]
        for algorithm in ALGORITHMS
    ]


HEADERS = ["algorithm"] + list(REGIMES)


def main() -> None:
    print(banner("Asynchronous interactions (Rand, median of 5)"))
    print(ascii_table(HEADERS, rows(run())))
    print("\nShape check: async slower, but zero convergence failures.")


if __name__ == "__main__":
    main()
