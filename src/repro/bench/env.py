"""Environment fingerprints: what machine/toolchain produced a record.

Every bench record carries a fingerprint so ``repro bench compare`` can
tell which metrics are comparable: deterministic simulation outputs gate
everywhere, but timings only gate between runs whose fingerprints match
(same interpreter, platform and CPU budget) — otherwise the comparison
degrades to a warning instead of a hard failure.
"""

from __future__ import annotations

import os
import platform
import resource
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

#: Fingerprint keys that must agree for timings to be comparable.
#: ``git_sha`` is deliberately excluded: comparing two different
#: commits is the whole point of a perf gate.
COMPARABLE_KEYS = ("python", "implementation", "platform", "machine", "cpu_count")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def peak_rss_mb() -> float:
    """This process's peak resident-set size so far, in MiB.

    Read from ``getrusage`` (no external dependency): the kernel reports
    the high-water mark in KiB on Linux and bytes on macOS.  The value
    is monotone over the process lifetime, so a benchmark measuring a
    workload's footprint should record the peak *after* the workload
    (the largest workload last, or one process per workload).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024 * 1024)
    return peak / 1024


def git_sha() -> Optional[str]:
    """The current commit's short sha, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def fingerprint() -> Dict[str, object]:
    """The normalized environment fingerprint of this process."""
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.system(),
        "machine": platform.machine(),
        "cpu_count": available_cpus(),
    }


def fingerprints_match(
    baseline: Optional[Dict[str, object]],
    current: Optional[Dict[str, object]],
) -> Tuple[bool, List[str]]:
    """Whether timings are comparable; returns the mismatched keys.

    A missing fingerprint on either side counts as a mismatch of every
    comparable key (old records predate the schema).
    """
    if not baseline or not current:
        return False, list(COMPARABLE_KEYS)
    mismatched = [
        key
        for key in COMPARABLE_KEYS
        if baseline.get(key) != current.get(key)
    ]
    return not mismatched, mismatched
