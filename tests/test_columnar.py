"""Columnar↔legacy equivalence: the PR 7 golden-seed guard.

The columnar store (:mod:`repro.core.store`) is the default overlay
backend; the object-per-node layout survives as a cross-check, exactly
like the ``walk_*`` reference reads guard the chain index.  Seeded
construction runs must produce bit-identical :class:`SimulationResult`s
on either backend:

* greedy/hybrid × all four paper oracles, churn on (the PR 2 matrix);
* the PR 3 fault DSL on top — mass crashes with rejoin, oracle
  outages, view partitions — for both algorithms;
* the distributed oracle realizations (DHT directory, sharded
  directory, random walkers), which read the overlay through the same
  view surface.

Plus the facade layer: the columnar chain index exposes the same
``entries`` read/write surface as the legacy index, so targeted
corruption (what ``tests/test_chain_index.py`` does to the dict
entries) must behave identically against the column-backed facades.
"""

from __future__ import annotations

import pytest

import repro.core.tree as tree_module
from repro.core.constraints import NodeSpec
from repro.core.index import ColumnarChainIndex
from repro.core.tree import Overlay
from repro.faults.plan import parse_fault_plan
from repro.sim.churn import ChurnConfig
from repro.sim.runner import SimulationConfig, run_simulation
from repro.workloads.random_workload import rand_workload

ORACLES = (
    "random",
    "random-capacity",
    "random-delay",
    "random-delay-capacity",
)

#: PR 3 fault regimes the guard replays on both backends.
FAULT_PLANS = (
    "crash@20:0.3:rejoin=10",
    "leave@15:0.2, crash@40:0.15",
    "oracle-outage@10:8",
    "source-outage@25:6",
    "partition@12:15:2",
    "stale-view@10:12:4",
)


def run_backend(backend: str, monkeypatch, **config_kwargs):
    """One seeded run with the overlay backend forced to ``backend``."""
    workload, _ = rand_workload(size=36, seed=5, source_fanout=3)
    defaults = dict(
        algorithm="hybrid",
        oracle="random-delay",
        seed=17,
        max_rounds=120,
        churn=ChurnConfig(),
        stop_at_convergence=False,
    )
    defaults.update(config_kwargs)
    config = SimulationConfig(**defaults)
    with monkeypatch.context() as patched:
        patched.setattr(tree_module, "DEFAULT_BACKEND", backend)
        return run_simulation(workload, config)


class TestGoldenSeedBackendGuard:
    """Seeded runs are bit-identical on columnar and object backends."""

    @pytest.mark.parametrize("algorithm", ["greedy", "hybrid"])
    @pytest.mark.parametrize("oracle", ORACLES)
    def test_churned_construction_identical(
        self, algorithm, oracle, monkeypatch
    ):
        columnar = run_backend(
            "columnar", monkeypatch, algorithm=algorithm, oracle=oracle
        )
        legacy = run_backend(
            "objects", monkeypatch, algorithm=algorithm, oracle=oracle
        )
        # SimulationResult equality covers convergence round, final
        # quality, per-round satisfied series and reconfiguration counts.
        assert columnar == legacy

    @pytest.mark.parametrize("algorithm", ["greedy", "hybrid"])
    @pytest.mark.parametrize("faults", FAULT_PLANS)
    def test_faulted_construction_identical(
        self, algorithm, faults, monkeypatch
    ):
        plan = parse_fault_plan(faults)
        columnar = run_backend(
            "columnar", monkeypatch, algorithm=algorithm, faults=plan
        )
        legacy = run_backend(
            "objects", monkeypatch, algorithm=algorithm, faults=plan
        )
        assert columnar == legacy

    @pytest.mark.parametrize(
        "realization,oracle",
        [
            ("dht", "random-delay"),
            ("sharded", "random-delay"),
            ("sharded", "random-delay-capacity"),
            ("random-walk", "random"),
        ],
    )
    def test_realized_oracles_identical(
        self, realization, oracle, monkeypatch
    ):
        columnar = run_backend(
            "columnar",
            monkeypatch,
            oracle=oracle,
            oracle_realization=realization,
        )
        legacy = run_backend(
            "objects",
            monkeypatch,
            oracle=oracle,
            oracle_realization=realization,
        )
        assert columnar == legacy

    def test_faults_and_sharded_realization_identical(self, monkeypatch):
        plan = parse_fault_plan("crash@18:0.25:rejoin=8, oracle-outage@30:5")
        columnar = run_backend(
            "columnar",
            monkeypatch,
            oracle_realization="sharded",
            faults=plan,
        )
        legacy = run_backend(
            "objects",
            monkeypatch,
            oracle_realization="sharded",
            faults=plan,
        )
        assert columnar == legacy


class TestBackendSurface:
    def test_unknown_backend_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Overlay(source_fanout=2, backend="rows")

    def test_objects_backend_has_no_store(self):
        overlay = Overlay(source_fanout=2, backend="objects")
        assert overlay.store is None
        assert not isinstance(overlay.chain_index, ColumnarChainIndex)

    def test_columnar_is_the_default(self):
        overlay = Overlay(source_fanout=2)
        assert overlay.backend == tree_module.DEFAULT_BACKEND == "columnar"
        assert overlay.store is not None


class TestColumnEntryFacade:
    """The columnar index's ``entries`` behave like the legacy dict's."""

    def _overlay(self) -> Overlay:
        overlay = Overlay(source_fanout=2, backend="columnar")
        a = overlay.add_consumer(NodeSpec(latency=6, fanout=2), "a")
        b = overlay.add_consumer(NodeSpec(latency=8, fanout=2), "b")
        overlay.attach(a, overlay.source)
        overlay.attach(b, a)
        return overlay

    def test_reads_match_walks(self):
        overlay = self._overlay()
        for node in overlay:
            entry = overlay.chain_index.entries[node.node_id]
            assert entry.depth == overlay.walk_depth(node)
            assert entry.root is overlay.walk_fragment_root(node)
            assert entry.rooted == overlay.walk_is_rooted(node)

    def test_corrupting_a_facade_is_detected(self):
        overlay = self._overlay()
        b = overlay.node(2)
        overlay.chain_index.entries[b.node_id].depth = 99  # corrupt
        with pytest.raises(Exception):
            overlay.check_integrity()

    def test_facade_writes_land_in_columns(self):
        overlay = self._overlay()
        b = overlay.node(2)
        overlay.chain_index.entries[b.node_id].delay = 41
        assert overlay.store.delay[b.node_id] == 41
