"""Sharded oracle directory: batched candidate sampling for N=100k.

Every other oracle realization pays per-query costs that scale with the
population: the omniscient oracles re-filter the whole online roster per
enquirer (O(N) per query, O(N²) per round while everyone is searching)
and the DHT directory re-registers every consumer every few rounds and
scans all records per query.  Both are fine at N=10^3 and hopeless at
N=10^5.  This module is the scale path:

* the candidate pool is split into **consistent-hash shards** over the
  existing :class:`repro.dht.chord.ChordRing` realization (one virtual
  directory peer per shard, owners resolved once and cached);
* each shard keeps a bounded **reservoir sample** (Vitter's Algorithm R)
  of its registration stream, so shard state is O(capacity) no matter
  how large the population grows;
* partner draws are **batched per round**: at round start each shard
  draws one batch from its reservoir (*one* RNG call per shard per
  round — replacing the per-node draws of every other realization), and
  every query that round is served by scanning the batches in a
  round-rotated shard order (home shard first, offset by the round
  number) from per-shard rotating cursors.  Because queries consume no
  RNG, a
  requeued query (the stale-referral hardening of
  :class:`~repro.core.protocol.ProtocolConfig`) reuses the round's batch
  instead of re-sampling the directory;
* occasional **cross-shard rebalance**: consistent hashing splits the
  ring unevenly, so every ``rebalance_interval`` rounds members migrate
  from over-full reservoirs to the emptiest shard (an explicit override
  map on top of the hash assignment).

Like the DHT directory, the answers are honest about information
quality: records carry the delay/free-fanout values observed when the
batch was drawn (refreshed at most every ``refresh_interval`` rounds),
so a returned candidate may no longer pass the filter — the protocol's
own re-validation during interactions absorbs this.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.core.errors import ConfigurationError
from repro.core.node import Node
from repro.core.tree import Overlay
from repro.dht.chord import ChordRing
from repro.oracles.base import Oracle

#: Filter modes, mirroring the four paper oracles (same vocabulary as
#: :data:`repro.oracles.distributed.DIRECTORY_FILTERS`).
SHARD_FILTERS = ("random", "capacity", "delay", "delay-capacity")


def autoscale_sizing(population: int) -> "tuple[int, int, int]":
    """Directory sizing ``(shards, reservoir_capacity, batch_size)`` for a
    population of ``population`` members.

    Sizing depends only on the population count, so seeded runs stay
    bit-reproducible.  Small populations get the compact 8×512×64 layout;
    past ~10k members the shard count grows linearly (one shard per
    ~1.25k members), reservoirs grow to cover the whole population, and
    batches grow to an eighth of a reservoir — keeping per-round serve
    capacity proportional to N instead of constant.
    """
    population = max(1, population)
    shards = max(8, population // 1280)
    reservoir_capacity = max(512, -(-population // shards))
    batch_size = max(64, reservoir_capacity // 8)
    return shards, reservoir_capacity, batch_size


class ShardRecord:
    """One member's registered facts, refreshed at batch-draw time."""

    __slots__ = ("node_id", "delay", "free_fanout", "refreshed_at")

    def __init__(self, node_id: int, delay: int, free_fanout: int, now: int) -> None:
        self.node_id = node_id
        self.delay = delay
        self.free_fanout = free_fanout
        self.refreshed_at = now


class ShardedDirectory:
    """Consistent-hash sharded, reservoir-sampled candidate directory."""

    def __init__(
        self,
        overlay: Overlay,
        rng: random.Random,
        shards: Optional[int] = None,
        reservoir_capacity: Optional[int] = None,
        batch_size: Optional[int] = None,
        refresh_interval: int = 2,
        rebalance_interval: int = 32,
    ) -> None:
        auto = autoscale_sizing(len(overlay.consumers))
        if shards is None:
            shards = auto[0]
        if reservoir_capacity is None:
            reservoir_capacity = auto[1]
        if batch_size is None:
            batch_size = auto[2]
        if shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if reservoir_capacity < 1:
            raise ConfigurationError("reservoir_capacity must be >= 1")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if refresh_interval < 1:
            raise ConfigurationError("refresh_interval must be >= 1")
        if rebalance_interval < 1:
            raise ConfigurationError("rebalance_interval must be >= 1")
        self.overlay = overlay
        self.rng = rng
        self.n_shards = shards
        self.reservoir_capacity = reservoir_capacity
        self.batch_size = batch_size
        self.refresh_interval = refresh_interval
        self.rebalance_interval = rebalance_interval
        #: The Chord substrate: one virtual directory peer per shard.
        self.ring = ChordRing()
        self._shard_index: Dict[str, int] = {}
        for index in range(shards):
            name = f"shard-{index}"
            self.ring.add_peer(name)
            self._shard_index[name] = index
        #: node_id -> hash-assigned shard (ring lookups cached: the ring
        #: membership is the fixed directory service population).
        self._owner_cache: Dict[int, int] = {}
        #: Rebalance reassignments layered over the hash assignment.
        self._overrides: Dict[int, int] = {}
        self._records: Dict[int, ShardRecord] = {}
        self._reservoirs: List[List[ShardRecord]] = [[] for _ in range(shards)]
        #: Per-shard registration-stream length (Algorithm R state).
        self._seen: List[int] = [0] * shards
        self._known_online: Set[int] = set()
        self._batches: List[List[ShardRecord]] = [[] for _ in range(shards)]
        self._cursors: List[int] = [0] * shards
        #: Round counter driving the serve-order rotation (see ``serve``).
        self._round = 0
        #: Total members migrated by cross-shard rebalances.
        self.rebalanced = 0

    # ------------------------------------------------------------------

    def shard_of(self, node_id: int) -> int:
        """The shard serving this id (hash assignment plus overrides)."""
        override = self._overrides.get(node_id)
        if override is not None:
            return override
        cached = self._owner_cache.get(node_id)
        if cached is None:
            cached = self._shard_index[self.ring.owner_of(node_id).name]
            self._owner_cache[node_id] = cached
        return cached

    def _register(self, node: Node, now: int) -> None:
        """Fold one (re)joining member into its shard's reservoir
        (Algorithm R over the shard's registration stream)."""
        overlay = self.overlay
        record = ShardRecord(
            node.node_id, overlay.delay_at(node), node.free_fanout, now
        )
        self._records[node.node_id] = record
        shard = self.shard_of(node.node_id)
        reservoir = self._reservoirs[shard]
        self._seen[shard] += 1
        if len(reservoir) < self.reservoir_capacity:
            reservoir.append(record)
        else:
            slot = self.rng.randrange(self._seen[shard])
            if slot < self.reservoir_capacity:
                reservoir[slot] = record

    def on_round(self, now: int) -> None:
        """Round upkeep: membership sync, rebalance, one draw per shard."""
        self._round = now
        online_now = {n.node_id for n in self.overlay._online}
        joined = online_now - self._known_online
        departed = self._known_online - online_now
        self._known_online = online_now
        for node_id in departed:
            self._records.pop(node_id, None)  # reservoirs prune lazily
        if joined:
            overlay_nodes = self.overlay._nodes
            for node_id in sorted(joined):
                self._register(overlay_nodes[node_id], now)
        if now % self.rebalance_interval == 0:
            self._rebalance()
        self._draw_batches(now)

    def _draw_batches(self, now: int) -> None:
        """One RNG draw per shard: this round's candidate batches.

        Dead reservoir entries (departed members) are pruned here — one
        O(capacity) sweep per shard per round — and drawn records older
        than ``refresh_interval`` are refreshed from live overlay state,
        bounding the staleness of every *served* candidate.
        """
        overlay = self.overlay
        records = self._records
        refresh_before = now - self.refresh_interval
        for shard in range(self.n_shards):
            reservoir = self._reservoirs[shard]
            live = [r for r in reservoir if records.get(r.node_id) is r]
            if len(live) != len(reservoir):
                self._reservoirs[shard] = reservoir = live
            size = min(self.batch_size, len(reservoir))
            batch = self.rng.sample(reservoir, size) if size else []
            for record in batch:
                if record.refreshed_at <= refresh_before:
                    node = overlay._nodes.get(record.node_id)
                    if node is not None:
                        record.delay = overlay.delay_at(node)
                        record.free_fanout = node.free_fanout
                        record.refreshed_at = now
            self._batches[shard] = batch
            self._cursors[shard] = 0

    def _rebalance(self) -> None:
        """Migrate members from over-full reservoirs to the emptiest shard.

        Consistent hashing over a handful of shard peers is lumpy; the
        override map evens the candidate pools out so every home shard
        serves batches of comparable quality.  Deterministic (no RNG):
        surplus members move tail-first to the currently smallest shard.
        """
        sizes = [len(r) for r in self._reservoirs]
        total = sum(sizes)
        if total == 0:
            return
        mean = total / self.n_shards
        # Tolerate one batch of skew before migrating.
        slack = max(1, self.batch_size // 2)
        for shard in range(self.n_shards):
            reservoir = self._reservoirs[shard]
            while len(reservoir) > mean + slack:
                target = min(range(self.n_shards), key=lambda s: len(self._reservoirs[s]))
                if target == shard or len(self._reservoirs[target]) + 1 > mean + slack:
                    break
                record = reservoir.pop()
                self._overrides[record.node_id] = target
                self._reservoirs[target].append(record)
                self.rebalanced += 1

    # ------------------------------------------------------------------

    def serve(self, enquirer: Node, passes) -> Optional[ShardRecord]:
        """First record accepted by ``passes``, scanning shards in a
        round-rotated order starting near the enquirer's home shard.

        The scan starts at ``(home + round) % n_shards`` and wraps over
        every shard, reading each shard's batch from its own rotating
        cursor.  The rotation is what makes small populations safe: with
        few members per shard an enquirer's home batch can permanently
        hold only itself or its own descendants (a livelock — every
        query forever returns the same useless answer), but rotating the
        start shard guarantees every enquirer fronts every shard within
        ``n_shards`` rounds.  Deterministic and RNG-free, like the
        cursor scheme it extends; at N=100k scale the home batch almost
        always serves the answer on the first probe, so the extra shards
        are rarely touched."""
        home = self.shard_of(enquirer.node_id)
        n_shards = self.n_shards
        enquirer_id = enquirer.node_id
        start = (home + self._round) % n_shards
        for step in range(n_shards):
            shard = start + step
            if shard >= n_shards:
                shard -= n_shards
            batch = self._batches[shard]
            size = len(batch)
            if size == 0:
                continue
            cursor = self._cursors[shard]
            for offset in range(size):
                index = cursor + offset
                if index >= size:
                    index -= size
                record = batch[index]
                if record.node_id == enquirer_id:
                    continue
                if passes(record):
                    self._cursors[shard] = (index + 1) % size
                    return record
        return None

    def batch_sizes(self) -> List[int]:
        """Current per-shard batch sizes (observability/tests)."""
        return [len(batch) for batch in self._batches]

    def reservoir_sizes(self) -> List[int]:
        """Current per-shard reservoir sizes (observability/tests)."""
        return [len(reservoir) for reservoir in self._reservoirs]


class ShardedOracle(Oracle):
    """The paper oracles served from a :class:`ShardedDirectory`.

    ``filter_mode`` mirrors the four paper oracles exactly like the DHT
    directory realization; the filter applies to the *batched* record
    values (bounded-staleness), with a final liveness check against the
    overlay — stale answers count in :attr:`stale_hits`.
    """

    realization = "sharded"

    def __init__(
        self,
        overlay: Overlay,
        rng: random.Random,
        filter_mode: str = "delay",
        shards: Optional[int] = None,
        reservoir_capacity: Optional[int] = None,
        batch_size: Optional[int] = None,
        refresh_interval: int = 2,
        rebalance_interval: int = 32,
    ) -> None:
        if filter_mode not in SHARD_FILTERS:
            raise ConfigurationError(
                f"unknown shard filter {filter_mode!r}; choose from {SHARD_FILTERS}"
            )
        super().__init__(overlay, rng)
        self.filter_mode = filter_mode
        self.name = f"sharded-{filter_mode}"
        self.directory = ShardedDirectory(
            overlay,
            rng,
            shards=shards,
            reservoir_capacity=reservoir_capacity,
            batch_size=batch_size,
            refresh_interval=refresh_interval,
            rebalance_interval=rebalance_interval,
        )
        #: Samples whose candidate was gone by query time.
        self.stale_hits = 0

    # ------------------------------------------------------------------

    def on_round(self, now: int) -> None:
        self.directory.on_round(now)

    def _record_passes(self, enquirer: Node, record: ShardRecord) -> bool:
        if self.filter_mode in ("capacity", "delay-capacity"):
            if record.free_fanout <= 0:
                return False
        if self.filter_mode in ("delay", "delay-capacity"):
            if record.delay >= enquirer.latency:
                return False
        return True

    def sample(self, enquirer: Node) -> Optional[Node]:
        record = self.directory.serve(
            enquirer, lambda r: self._record_passes(enquirer, r)
        )
        if record is None:
            self.misses += 1
            self.probe.oracle_miss(enquirer.node_id, self.name)
            return None
        node = self.overlay._nodes.get(record.node_id)
        if node is None or not node.online:
            self.stale_hits += 1
            self.misses += 1
            self.probe.oracle_miss(enquirer.node_id, self.name)
            return None
        self.hits += 1
        self.probe.oracle_query(
            enquirer.node_id,
            self.name,
            len(self.directory._batches[self.directory.shard_of(enquirer.node_id)]),
            node.node_id,
        )
        return node

    def admits(self, enquirer: Node, candidate: Node) -> bool:
        """This oracle's filter on *live* overlay values (for fault
        decorators that bypass the batched records)."""
        if candidate is enquirer:
            return False
        if self.filter_mode in ("capacity", "delay-capacity"):
            if candidate.free_fanout <= 0:
                return False
        if self.filter_mode in ("delay", "delay-capacity"):
            if self.overlay.delay_at(candidate) >= enquirer.latency:
                return False
        return True

    def _admits(self, enquirer: Node, candidate: Node) -> bool:
        return True  # unused: sampling is batch-based
