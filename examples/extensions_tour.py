#!/usr/bin/env python3
"""Tour of the §7 future-work extensions, implemented.

The paper's conclusion sketches three directions; this example runs each
one end-to-end:

1. **Locality contexts** — build the same workload with plain Oracle
   Random-Delay and with the locality-biased variant; compare the network
   cost of the trees and the *measured* delivery freshness when per-hop
   forwarding time follows real network distance.
2. **Multi-feed reuse** — three feeds over one intersecting consumer
   population; compare connection state with and without the reuse-biased
   oracle.
3. **Multipath delivery** — the P2P-video sketch: k LagOvers carrying k
   stream descriptions; delivery probability under random node failures.

Run:  python examples/extensions_tour.py
"""

from repro.analysis import ascii_table
from repro.locality import run_pair
from repro.multifeed import MultiFeedSystem, reuse_oracle_factory
from repro.multipath import delivery_under_failures
from repro.workloads import make as make_workload


def locality_section() -> None:
    print("1. Locality-gradated construction " + "-" * 30)
    plain, local = run_pair(population=80, seed=1)
    rows = [
        [
            o.variant,
            o.construction_rounds,
            round(o.mean_edge_distance, 3),
            f"{o.same_domain_fraction:.0%}",
            round(o.mean_delivered_staleness, 2),
        ]
        for o in (plain, local)
    ]
    print(
        ascii_table(
            ["oracle", "rounds", "edge distance", "same-domain", "staleness (T)"],
            rows,
        )
    )
    print()


def multifeed_section() -> None:
    print("2. Multi-feed reuse over intersecting consumers " + "-" * 16)
    rows = []
    for label, factory in (
        ("independent", None),
        ("reuse-biased", reuse_oracle_factory(0.9)),
    ):
        system = MultiFeedSystem(
            ["news", "sports", "tech"],
            consumer_count=60,
            seed=4,
            oracle_factory=factory,
        )
        assert system.run_sequential()
        metrics = system.reuse_metrics()
        rows.append(
            [
                label,
                metrics.distinct_partnerships,
                metrics.reused_partnerships,
                f"{metrics.reuse_fraction:.0%}",
                round(metrics.mean_neighbors_per_consumer, 2),
            ]
        )
    print(
        ascii_table(
            ["oracle", "partnerships", "reused", "reuse frac", "mean neighbors"],
            rows,
        )
    )
    print()


def multipath_section() -> None:
    print("3. Multipath delivery under node failures " + "-" * 22)
    workload = make_workload("Rand", size=60, seed=2)
    rows = []
    for paths in (1, 2, 3):
        for row in delivery_under_failures(
            workload, paths=paths, failure_fractions=[0.1, 0.25], seed=2, trials=8
        ):
            rows.append(
                [
                    paths,
                    f"{row.failed_fraction:.0%}",
                    f"{row.delivered_fraction:.1%}",
                    round(row.mean_surviving_paths, 2),
                ]
            )
    print(
        ascii_table(
            ["paths", "failed", "still delivered", "surviving descriptions"],
            rows,
        )
    )


def main() -> None:
    locality_section()
    multifeed_section()
    multipath_section()


if __name__ == "__main__":
    main()
