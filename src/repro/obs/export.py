"""JSONL trace export, import and summarization.

A trace file is newline-delimited JSON.  The first record is a header;
every following record carries a ``kind`` discriminator — the protocol
events of :mod:`repro.obs.events`, plus two aggregate record types the
summary needs without replaying the run:

* ``phase-timing`` — one per round-loop phase, from
  :class:`repro.obs.timing.PhaseTimings`;
* ``metric`` — one per instrument of the run's
  :class:`~repro.obs.counters.MetricsRegistry` (counters, gauges,
  histograms);
* ``health-sample`` — one per retained round of the
  :class:`~repro.obs.health.HealthRecorder` flight recorder;
* ``span`` — one per delivery edge from a
  :class:`~repro.obs.trace.SpanRecorder` (feed dissemination);
* ``staleness`` — one per consumer from a
  :class:`~repro.obs.trace.StalenessAttributor` (round-domain
  attribution rows).

Readers skip record kinds they don't know, so the format is
forward-extensible; ``repro obs summarize run.jsonl`` renders any trace
written by ``repro build --trace-out run.jsonl``, old or new.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.counters import MetricsRegistry
from repro.obs.events import Event, event_from_dict

#: Format version written to (and checked loosely by) trace headers.
TRACE_VERSION = 1


@dataclasses.dataclass
class Trace:
    """An imported trace: events plus the aggregate records."""

    events: List[Event]
    phase_timings: Dict[str, Dict[str, float]]
    metrics: Dict[str, Dict[str, Any]]
    header: Dict[str, Any]
    #: ``health-sample`` records, oldest-first (raw dict form).
    health: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: ``span`` records in write order (raw dict form).
    spans: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: ``staleness`` attribution rows (raw dict form).
    attribution: List[Dict[str, Any]] = dataclasses.field(default_factory=list)

    def event_counts(self) -> Dict[str, int]:
        """``{kind: count}`` over the trace's events, sorted by kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def rounds(self) -> int:
        """Highest round stamped on any event (0 for an empty trace)."""
        return max((e.round for e in self.events), default=0)


def write_trace(
    path: str,
    events: Iterable[Event],
    phase_timings: Optional[Dict[str, Dict[str, float]]] = None,
    registry: Optional[MetricsRegistry] = None,
    header_extra: Optional[Dict[str, Any]] = None,
    health: Optional[Iterable[Dict[str, Any]]] = None,
    spans: Optional[Iterable[Dict[str, Any]]] = None,
    attribution: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write a JSONL trace; returns the number of event records written.

    ``phase_timings`` takes the :meth:`~repro.obs.timing.PhaseTimings.summary`
    form; ``registry`` contributes one ``metric`` record per instrument;
    ``health``/``spans``/``attribution`` take already-JSON-ready dicts
    (each recorder's ``records()`` form, ``kind`` included).
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        header = {"kind": "trace-header", "version": TRACE_VERSION}
        if header_extra:
            header.update(header_extra)
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(json.dumps(event.to_dict()) + "\n")
            count += 1
        for record in health or ():
            handle.write(json.dumps(record) + "\n")
        for record in spans or ():
            handle.write(json.dumps(record) + "\n")
        for record in attribution or ():
            handle.write(json.dumps(record) + "\n")
        for phase, stats in (phase_timings or {}).items():
            record = {"kind": "phase-timing", "phase": phase}
            record.update(stats)
            handle.write(json.dumps(record) + "\n")
        if registry is not None:
            snapshot = registry.snapshot()
            for name, value in snapshot["counters"].items():
                handle.write(
                    json.dumps(
                        {
                            "kind": "metric",
                            "metric": "counter",
                            "name": name,
                            "value": value,
                        }
                    )
                    + "\n"
                )
            for name, value in snapshot["gauges"].items():
                handle.write(
                    json.dumps(
                        {
                            "kind": "metric",
                            "metric": "gauge",
                            "name": name,
                            "value": value,
                        }
                    )
                    + "\n"
                )
            for name, stats in snapshot["histograms"].items():
                record = {"kind": "metric", "metric": "histogram", "name": name}
                record.update(stats)
                handle.write(json.dumps(record) + "\n")
    return count


def read_trace(path: str) -> Trace:
    """Read a JSONL trace written by :func:`write_trace`.

    Unknown record kinds are skipped; blank lines are tolerated.
    """
    events: List[Event] = []
    phase_timings: Dict[str, Dict[str, float]] = {}
    metrics: Dict[str, Dict[str, Any]] = {}
    header: Dict[str, Any] = {}
    health: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    attribution: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "trace-header":
                header = record
                continue
            if kind == "health-sample":
                health.append(record)
                continue
            if kind == "span":
                spans.append(record)
                continue
            if kind == "staleness":
                attribution.append(record)
                continue
            if kind == "phase-timing":
                phase = record["phase"]
                phase_timings[phase] = {
                    k: v for k, v in record.items() if k not in ("kind", "phase")
                }
                continue
            if kind == "metric":
                name = record["name"]
                metrics[name] = {
                    k: v for k, v in record.items() if k not in ("kind", "name")
                }
                continue
            event = event_from_dict(record)
            if event is not None:
                events.append(event)
    return Trace(
        events=events,
        phase_timings=phase_timings,
        metrics=metrics,
        header=header,
        health=health,
        spans=spans,
        attribution=attribution,
    )


def event_count_rows(trace: Trace) -> List[List[object]]:
    """Table rows ``[kind, count, per_round]`` sorted by count descending."""
    rounds = max(trace.rounds(), 1)
    return [
        [kind, count, count / rounds]
        for kind, count in sorted(
            trace.event_counts().items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]


def phase_timing_rows(trace: Trace) -> List[List[object]]:
    """Table rows ``[phase, seconds, calls, share]`` from a trace."""
    from repro.obs.timing import PHASE_ORDER

    total = sum(s.get("seconds", 0.0) for s in trace.phase_timings.values())
    known = [p for p in PHASE_ORDER if p in trace.phase_timings]
    extra = sorted(p for p in trace.phase_timings if p not in PHASE_ORDER)
    rows = []
    for phase in known + extra:
        stats = trace.phase_timings[phase]
        seconds = stats.get("seconds", 0.0)
        rows.append(
            [
                phase,
                seconds,
                int(stats.get("calls", 0)),
                (seconds / total) if total > 0 else 0.0,
            ]
        )
    return rows


def counter_rows(trace: Trace) -> List[List[object]]:
    """Table rows ``[name, value]`` for non-event counters.

    The per-kind ``events.*`` counters duplicate :func:`event_count_rows`
    and are skipped; what remains are the subsystem totals — e.g.
    ``network.dropped_loss`` / ``network.dropped_unroutable`` from the
    message transport, ``faults.*`` injections and ``source.contact_*``
    outcomes.
    """
    rows = []
    for name, stats in sorted(trace.metrics.items()):
        if stats.get("metric") != "counter" or name.startswith("events."):
            continue
        rows.append([name, int(stats.get("value", 0))])
    return rows


def histogram_rows(trace: Trace) -> List[List[object]]:
    """Table rows ``[name, count, mean, min, max]`` for trace histograms."""
    rows = []
    for name, stats in sorted(trace.metrics.items()):
        if stats.get("metric") != "histogram":
            continue
        rows.append(
            [
                name,
                int(stats.get("count", 0)),
                stats.get("mean"),
                stats.get("min"),
                stats.get("max"),
            ]
        )
    return rows
