"""Baselines: direct client-server polling and FeedTree/Scribe multicast."""

from repro.baselines.client_server import DirectPollingBaseline, PollingReport
from repro.baselines.feedtree import FeedTreeReport, evaluate_feedtree
from repro.baselines.scribe import ScribeMulticast, ScribeTree

__all__ = [
    "DirectPollingBaseline",
    "FeedTreeReport",
    "PollingReport",
    "ScribeMulticast",
    "ScribeTree",
    "evaluate_feedtree",
]
