"""Convergence predicates and overlay quality metrics.

The paper's headline metric is *construction latency* — the number of
rounds until the overlay first satisfies every online consumer (§5).  The
round loop itself lives in :mod:`repro.sim.runner`; this module provides
the predicates and the per-snapshot quality measures used by the
evaluation and the analysis package.

:func:`measure` and :func:`depth_histogram` used to each re-derive every
node's delay (three walks per node inside ``measure`` alone); both are
now served from one shared forest scan — a single pass over the online
consumers using the O(1) chain-index reads — cached against
:attr:`~repro.core.index.ChainIndex.version` so the several readers of a
simulation round (metrics record, convergence check, analysis) pay for
exactly one traversal per overlay state.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.core.node import Node
from repro.core.tree import Overlay


@dataclasses.dataclass(frozen=True)
class OverlayQuality:
    """Point-in-time quality measures of an overlay under construction.

    Attributes
    ----------
    online:
        Number of online consumers.
    rooted:
        How many of them are connected (via their chain) to the source.
    satisfied:
        How many are rooted *and* within their latency constraint.
    fragments:
        Number of disjoint groups (the source tree plus orphan fragments).
    max_depth:
        Deepest rooted consumer, in hops below the source.
    mean_slack:
        Mean of ``l_i - DelayAt(i)`` over satisfied consumers (how much
        latency budget the construction left unused); 0.0 if none.
    used_source_fanout:
        Direct children of the source (the load LagOver leaves on it).
    """

    online: int
    rooted: int
    satisfied: int
    fragments: int
    max_depth: int
    mean_slack: float
    used_source_fanout: int

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of online consumers whose constraint is met."""
        return self.satisfied / self.online if self.online else 1.0

    @property
    def converged(self) -> bool:
        """Whether every online consumer is satisfied."""
        return self.satisfied == self.online


def _forest_scan(overlay: Overlay) -> Tuple[OverlayQuality, Dict[int, int]]:
    """One pass over the online consumers: quality and depth histogram.

    The result is cached on the overlay keyed by the chain index's
    mutation version, so within one overlay state (e.g. the tail of a
    simulation round: metrics record, then the runner's convergence
    check, then any analysis) the forest is traversed exactly once.
    """
    cache = overlay._quality_cache
    version = overlay.chain_index.version
    if cache is not None and cache[0] == version:
        return cache[1], cache[2]
    online = rooted = satisfied = 0
    slack_sum = 0
    max_depth = 0
    fragments = 1  # the source's own tree
    histogram: Dict[int, int] = {}
    for node in overlay.online_consumers:
        online += 1
        if node.parent is None:
            fragments += 1
        if overlay.is_rooted(node):
            rooted += 1
            delay = overlay.delay_at(node)
            if delay > max_depth:
                max_depth = delay
            histogram[delay] = histogram.get(delay, 0) + 1
            if delay <= node.latency:
                satisfied += 1
                slack_sum += node.latency - delay
    quality = OverlayQuality(
        online=online,
        rooted=rooted,
        satisfied=satisfied,
        fragments=fragments,
        max_depth=max_depth,
        mean_slack=(slack_sum / satisfied) if satisfied else 0.0,
        used_source_fanout=len(overlay.source.children),
    )
    histogram = dict(sorted(histogram.items()))
    overlay._quality_cache = (version, quality, histogram)
    return quality, histogram


def measure(overlay: Overlay) -> OverlayQuality:
    """Compute :class:`OverlayQuality` for the current overlay state."""
    return _forest_scan(overlay)[0]


def depth_histogram(overlay: Overlay) -> Dict[int, int]:
    """Histogram ``{depth: count}`` of rooted online consumers."""
    return dict(_forest_scan(overlay)[1])


def violated_nodes(overlay: Overlay) -> List[Node]:
    """Online consumers that currently do not meet their constraint."""
    return [n for n in overlay.online_consumers if not overlay.meets_latency(n)]


def latency_gradation_violations(overlay: Overlay) -> List[Node]:
    """Consumer edges breaking the greedy invariant ``l_parent <= l_child``.

    Returns the child node of each violating edge.  Empty for any overlay
    built purely by the Greedy algorithm; generally non-empty for the
    Hybrid algorithm — this measure quantifies how far Hybrid strays from
    strict gradation while still meeting everyone's constraints.
    """
    violations = []
    for node in overlay.online_consumers:
        parent = node.parent
        if parent is not None and not parent.is_source:
            if parent.latency > node.latency:
                violations.append(node)
    return violations
