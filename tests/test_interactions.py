"""Unit tests for the checked reconfiguration moves (repro.core.interactions)."""

import pytest

from repro.core.interactions import (
    any_edge,
    greedy_edge,
    shed_one_child,
    try_attach,
    try_displace_at_source,
    try_displace_child,
    try_insert_between,
)
from repro.core.tree import Overlay

from tests.conftest import spec


@pytest.fixture
def overlay():
    return Overlay(source_fanout=2)


def add(overlay, name, latency, fanout):
    return overlay.add_consumer(spec(latency, fanout), name=name)


class TestEdgePolicies:
    def test_greedy_edge_requires_ordering(self, overlay):
        strict = add(overlay, "s", 1, 1)
        lax = add(overlay, "l", 5, 1)
        assert greedy_edge(strict, lax)
        assert not greedy_edge(lax, strict)
        assert greedy_edge(strict, strict)

    def test_greedy_edge_source_always_ok(self, overlay):
        lax = add(overlay, "l", 5, 1)
        assert greedy_edge(overlay.source, lax)

    def test_any_edge_always_ok(self, overlay):
        strict = add(overlay, "s", 1, 1)
        lax = add(overlay, "l", 5, 1)
        assert any_edge(lax, strict)


class TestTryAttach:
    def test_attach_to_source(self, overlay):
        a = add(overlay, "a", 1, 1)
        assert try_attach(overlay, a, overlay.source)
        assert a.parent is overlay.source

    def test_attach_rejected_on_latency(self, overlay):
        a = add(overlay, "a", 1, 1)
        b = add(overlay, "b", 1, 1)
        overlay.attach(a, overlay.source)
        # b under a would sit at delay 2 > l_b = 1.
        assert not try_attach(overlay, b, a)
        assert b.parent is None

    def test_attach_boundary_latency_accepted(self, overlay):
        a = add(overlay, "a", 1, 1)
        b = add(overlay, "b", 2, 1)
        overlay.attach(a, overlay.source)
        assert try_attach(overlay, b, a)  # delay 2 == l_b

    def test_attach_rejected_on_fanout(self, overlay):
        a = add(overlay, "a", 1, 0)
        b = add(overlay, "b", 5, 1)
        overlay.attach(a, overlay.source)
        assert not try_attach(overlay, b, a)

    def test_attach_rejected_on_greedy_edge(self, overlay):
        lax = add(overlay, "lax", 5, 2)
        strict = add(overlay, "strict", 2, 1)
        overlay.attach(lax, overlay.source)
        assert not try_attach(overlay, strict, lax, greedy_edge)
        assert try_attach(overlay, strict, lax, any_edge)

    def test_attach_rejected_for_parented_child(self, overlay):
        a = add(overlay, "a", 1, 1)
        b = add(overlay, "b", 5, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(b, a)
        assert not try_attach(overlay, b, overlay.source)

    def test_attach_rejected_when_creates_cycle(self, overlay):
        a = add(overlay, "a", 5, 1)
        b = add(overlay, "b", 5, 1)
        overlay.attach(b, a)
        assert not try_attach(overlay, a, b)

    def test_attach_rejected_offline(self, overlay):
        a = add(overlay, "a", 1, 1)
        overlay.go_offline(a)
        assert not try_attach(overlay, a, overlay.source)

    def test_attach_uses_potential_delay_in_fragment(self, overlay):
        root = add(overlay, "root", 3, 2)
        child = add(overlay, "child", 2, 1)
        # root unrooted: potential delay 1, so child would sit at 2 == l.
        assert try_attach(overlay, child, root)
        tight = add(overlay, "tight", 1, 1)
        assert not try_attach(overlay, tight, root)  # potential 2 > 1


class TestShedOneChild:
    def test_sheds_laxest_child(self, overlay):
        parent = add(overlay, "p", 1, 2)
        strict = add(overlay, "s", 2, 1)
        lax = add(overlay, "l", 9, 1)
        overlay.attach(strict, parent)
        overlay.attach(lax, parent)
        shed = shed_one_child(overlay, parent)
        assert shed is lax
        assert lax.parent is None
        assert strict.parent is parent

    def test_shed_empty_returns_none(self, overlay):
        parent = add(overlay, "p", 1, 2)
        assert shed_one_child(overlay, parent) is None


class TestTryDisplaceChild:
    def _setup(self, overlay):
        """source <- a(l1,f1) <- m(l3,f1); incoming i(l2,f1)."""
        a = add(overlay, "a", 1, 1)
        m = add(overlay, "m", 3, 1)
        i = add(overlay, "i", 2, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(m, a)
        return a, m, i

    def test_displace_takes_slot_and_adopts(self, overlay):
        a, m, i = self._setup(overlay)
        assert try_displace_child(overlay, i, a)
        assert i.parent is a
        assert m.parent is i
        assert overlay.delay_at(m) == 3  # within l_m

    def test_displace_respects_victim_latency(self, overlay):
        a = add(overlay, "a", 1, 1)
        m = add(overlay, "m", 2, 1)  # cannot go one deeper: delay 3 > 2
        i = add(overlay, "i", 2, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(m, a)
        assert not try_displace_child(overlay, i, a)

    def test_displace_requires_incoming_capacity(self, overlay):
        a, m, i_unused = self._setup(overlay)
        full = add(overlay, "full", 2, 0)
        assert not try_displace_child(overlay, full, a)

    def test_displace_with_shed_frees_capacity(self, overlay):
        a, m, _ = self._setup(overlay)
        incoming = add(overlay, "inc", 2, 1)
        burden = add(overlay, "burden", 9, 0)
        overlay.attach(burden, incoming)  # incoming now full
        assert not try_displace_child(overlay, incoming, a)
        assert try_displace_child(overlay, incoming, a, allow_shed=True)
        assert burden.parent is None  # shed
        assert m.parent is incoming

    def test_displace_respects_greedy_edges(self, overlay):
        a = add(overlay, "a", 1, 1)
        m = add(overlay, "m", 3, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(m, a)
        lax_incoming = add(overlay, "lax", 4, 1)
        # Edge lax(4) -> m(3) violates the greedy invariant.
        assert not try_displace_child(overlay, lax_incoming, a, greedy_edge)
        assert try_displace_child(overlay, lax_incoming, a, any_edge)

    def test_displace_rejected_same_fragment(self, overlay):
        root = add(overlay, "root", 2, 2)
        child = add(overlay, "child", 3, 1)
        overlay.attach(child, root)
        assert not try_displace_child(overlay, root, child)

    def test_displace_prefers_laxest_victim(self, overlay):
        a = add(overlay, "a", 1, 2)
        m1 = add(overlay, "m1", 3, 1)
        m2 = add(overlay, "m2", 9, 1)
        i = add(overlay, "i", 2, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(m1, a)
        overlay.attach(m2, a)
        assert try_displace_child(overlay, i, a)
        assert m2.parent is i  # laxest displaced
        assert m1.parent is a


class TestTryInsertBetween:
    def test_insert_splices_above(self, overlay):
        a = add(overlay, "a", 1, 1)
        j = add(overlay, "j", 4, 1)
        i = add(overlay, "i", 2, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(j, a)
        assert try_insert_between(overlay, i, j)
        assert i.parent is a
        assert j.parent is i
        assert overlay.delay_at(j) == 3

    def test_insert_rejected_when_child_would_violate(self, overlay):
        a = add(overlay, "a", 1, 1)
        j = add(overlay, "j", 2, 1)  # j cannot afford one more hop
        i = add(overlay, "i", 2, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(j, a)
        assert not try_insert_between(overlay, i, j)
        assert j.parent is a  # untouched

    def test_insert_rejected_when_incoming_would_violate(self, overlay):
        a = add(overlay, "a", 1, 1)
        j = add(overlay, "j", 9, 1)
        i = add(overlay, "i", 1, 1)  # needs delay 1, would get 2
        overlay.attach(a, overlay.source)
        overlay.attach(j, a)
        assert not try_insert_between(overlay, i, j)

    def test_insert_rejected_parentless_child(self, overlay):
        j = add(overlay, "j", 4, 1)
        i = add(overlay, "i", 2, 1)
        assert not try_insert_between(overlay, i, j)

    def test_insert_needs_fanout_or_shed(self, overlay):
        a = add(overlay, "a", 1, 1)
        j = add(overlay, "j", 4, 1)
        i = add(overlay, "i", 2, 1)
        burden = add(overlay, "burden", 9, 0)
        overlay.attach(a, overlay.source)
        overlay.attach(j, a)
        overlay.attach(burden, i)
        assert not try_insert_between(overlay, i, j)
        assert try_insert_between(overlay, i, j, allow_shed=True)
        assert burden.parent is None
        assert j.parent is i

    def test_insert_respects_greedy_edges(self, overlay):
        a = add(overlay, "a", 1, 1)
        j = add(overlay, "j", 2, 1)
        lax = add(overlay, "lax", 9, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(j, a)
        # lax(9) above j(2) violates the invariant; also j's latency check
        # fails anyway for depth 3 -- use a j with slack to isolate.
        j2 = add(overlay, "j2", 9, 1)
        overlay2 = overlay  # same overlay, separate chain
        b = add(overlay, "b", 1, 1)
        overlay2.attach(b, overlay.source)
        overlay2.attach(j2, b)
        mid = add(overlay, "mid", 5, 1)
        assert not try_insert_between(overlay2, lax, j, greedy_edge)
        assert try_insert_between(overlay2, mid, j2, greedy_edge)


class TestTryDisplaceAtSource:
    def test_displace_adopts_victim(self, overlay):
        victim = add(overlay, "v", 3, 1)
        incoming = add(overlay, "i", 1, 1)
        overlay.attach(victim, overlay.source)
        assert try_displace_at_source(overlay, incoming, victim)
        assert incoming.parent is overlay.source
        assert victim.parent is incoming

    def test_displace_without_adoption_leaves_victim_parentless(self, overlay):
        victim = add(overlay, "v", 3, 1)
        incoming = add(overlay, "i", 1, 0)  # cannot adopt (fanout 0)
        overlay.attach(victim, overlay.source)
        assert try_displace_at_source(overlay, incoming, victim)
        assert victim.parent is None
        assert victim.referral is incoming

    def test_displace_requires_victim_at_source(self, overlay):
        a = add(overlay, "a", 1, 1)
        v = add(overlay, "v", 3, 1)
        i = add(overlay, "i", 1, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(v, a)
        assert not try_displace_at_source(overlay, i, v)

    def test_displace_adoption_respects_victim_latency(self, overlay):
        victim = add(overlay, "v", 1, 1)  # cannot live at delay 2
        incoming = add(overlay, "i", 1, 1)
        overlay.attach(victim, overlay.source)
        assert try_displace_at_source(overlay, incoming, victim)
        assert victim.parent is None


class TestAtomicity:
    def test_failed_moves_leave_no_trace(self, overlay):
        """A rejected move must leave links and counters untouched."""
        a = add(overlay, "a", 1, 1)
        j = add(overlay, "j", 2, 1)
        i = add(overlay, "i", 2, 1)
        overlay.attach(a, overlay.source)
        overlay.attach(j, a)
        before = (overlay.snapshot(), overlay.attach_count, overlay.detach_count)
        assert not try_attach(overlay, i, j)  # latency reject (delay 3 > 2)
        assert not try_insert_between(overlay, i, j)  # child latency reject
        assert not try_displace_child(overlay, i, a)  # no legal victim
        after = (overlay.snapshot(), overlay.attach_count, overlay.detach_count)
        assert before == after
        overlay.check_integrity()
