"""Per-round measurement collection for construction runs."""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.convergence import OverlayQuality, measure
from repro.core.tree import Overlay


@dataclasses.dataclass(frozen=True)
class RoundRecord:
    """State of the overlay at the end of one simulation round."""

    round: int
    quality: OverlayQuality
    cumulative_attaches: int
    cumulative_detaches: int
    departures: int
    rejoins: int


class MetricsCollector:
    """Accumulates one :class:`RoundRecord` per round of a run."""

    def __init__(self, overlay: Overlay) -> None:
        self.overlay = overlay
        self.records: List[RoundRecord] = []

    def record(self, now: int, departures: int = 0, rejoins: int = 0) -> RoundRecord:
        """Measure the overlay and append a record for round ``now``.

        :func:`~repro.core.convergence.measure` is served by the
        per-version cached forest scan, so the runner's convergence check
        and any same-round analysis reuse this record's traversal.
        """
        record = RoundRecord(
            round=now,
            quality=measure(self.overlay),
            cumulative_attaches=self.overlay.attach_count,
            cumulative_detaches=self.overlay.detach_count,
            departures=departures,
            rejoins=rejoins,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # convenience series extraction
    # ------------------------------------------------------------------

    def satisfied_series(self) -> List[float]:
        """Satisfied fraction per round."""
        return [r.quality.satisfied_fraction for r in self.records]

    def fragments_series(self) -> List[int]:
        """Number of disjoint fragments per round (coalescence progress)."""
        return [r.quality.fragments for r in self.records]

    def first_converged_round(self) -> Optional[int]:
        """First round at which all online consumers were satisfied."""
        for record in self.records:
            if record.quality.converged:
                return record.round
        return None
