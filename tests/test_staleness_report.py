"""Direct unit tests for the staleness report (repro.feeds.staleness)."""

from repro.core.tree import Overlay
from repro.feeds.client import FeedConsumer
from repro.feeds.items import FeedItem
from repro.feeds.staleness import build_report

from tests.conftest import build_chain, spec


def make_setup():
    """source <- a(l1) <- b(l2); c unrooted; consumers keyed by id."""
    overlay = Overlay(source_fanout=1)
    a = overlay.add_consumer(spec(1, 1), name="a")
    b = overlay.add_consumer(spec(2, 1), name="b")
    overlay.add_consumer(spec(2, 1), name="c")
    build_chain(overlay, a, b)
    consumers = {n.node_id: FeedConsumer(n.node_id) for n in overlay.consumers}
    return overlay, consumers


def deliver(consumers, node_id, seq, published, arrived):
    consumers[node_id].deliver(
        [FeedItem(seq=seq, title=f"i{seq}", published_at=published)], arrived
    )


class TestBuildReport:
    def test_on_time_consumer_satisfied(self):
        overlay, consumers = make_setup()
        for seq in (1, 2, 3):
            deliver(consumers, 1, seq, published=seq, arrived=seq + 0.5)
        report = build_report(overlay, consumers, pull_period=1.0, published=3)
        row = next(c for c in report.consumers if c.node_id == 1)
        assert row.depth == 1
        assert row.within_constraint
        assert row.worst_staleness <= 1.0

    def test_late_delivery_flags_violation(self):
        overlay, consumers = make_setup()
        deliver(consumers, 1, 1, published=1.0, arrived=4.0)  # 3 units stale
        report = build_report(overlay, consumers, pull_period=1.0, published=3)
        row = next(c for c in report.consumers if c.node_id == 1)
        assert not row.within_constraint
        assert report.worst_violation() > 0

    def test_missing_old_items_flag_violation(self):
        overlay, consumers = make_setup()
        # b (depth 2) received nothing although 10 items are old enough.
        report = build_report(overlay, consumers, pull_period=1.0, published=10)
        row = next(c for c in report.consumers if c.node_id == 2)
        assert row.expected > 0
        assert row.received == 0
        assert not row.within_constraint

    def test_unrooted_consumer_expected_zero(self):
        overlay, consumers = make_setup()
        report = build_report(overlay, consumers, pull_period=1.0, published=10)
        row = next(c for c in report.consumers if c.node_id == 3)
        assert row.depth == 0
        assert row.expected == 0

    def test_satisfied_fraction_counts_rooted_only(self):
        overlay, consumers = make_setup()
        for node_id, depth in ((1, 1), (2, 2)):
            for seq in range(1, 9):
                deliver(
                    consumers,
                    node_id,
                    seq,
                    published=float(seq),
                    arrived=seq + depth * 0.9,
                )
        report = build_report(overlay, consumers, pull_period=1.0, published=8)
        assert report.satisfied_fraction == 1.0

    def test_tail_items_not_required(self):
        """Items newer than a node's depth window are not demanded."""
        overlay, consumers = make_setup()
        # b at depth 2 received items 1..7 of 10; 8..10 are within its
        # in-flight tail (depth + 1 = 3), so nothing is 'missing'.
        for seq in range(1, 8):
            deliver(consumers, 2, seq, published=float(seq), arrived=seq + 1.5)
        report = build_report(overlay, consumers, pull_period=1.0, published=10)
        row = next(c for c in report.consumers if c.node_id == 2)
        assert row.expected == 7
        assert row.received == 7
        assert row.within_constraint

    def test_no_rooted_consumers_is_vacuously_satisfied(self):
        overlay = Overlay(source_fanout=1)
        overlay.add_consumer(spec(1, 1), name="lone")
        consumers = {1: FeedConsumer(1)}
        report = build_report(overlay, consumers, pull_period=1.0, published=5)
        assert report.satisfied_fraction == 1.0
        assert report.worst_violation() == 0.0
