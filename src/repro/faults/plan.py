"""Declarative fault plans: *what* goes wrong, and *when*.

The paper stresses LagOver only with benign independent Bernoulli churn
(§5.3).  This module describes the adversarial regimes beyond it — the
disruption vocabulary that self-stabilizing-overlay evaluations (Berns,
arXiv:1506.01688) and gradient-topology convergence studies (Terelius et
al., arXiv:1103.5678) measure recovery against:

* :class:`MassCrash` / :class:`CrashNodes` — correlated simultaneous
  departures: *crashes* (peers vanish without a word) or *graceful
  leaves* (a leaver hands each child a referral to its own parent, the
  overlay analogue of connection draining), optionally followed by a
  mass rejoin burst ``rejoin_after`` rounds later;
* :class:`SourceOutage` — the feed source rejects every direct contact
  for a window of rounds (the paper's source is assumed perpetually
  reachable);
* :class:`OracleOutage` — the partner directory answers nothing at all;
* :class:`StaleOracleView` — the oracle serves an ``staleness``-rounds-old
  snapshot of the overlay, so its referrals may point at departed or
  already-full peers;
* :class:`ViewPartition` — the oracle only samples partners from the
  enquirer's own side of a membership split until the partition heals.

A :class:`FaultPlan` composes any number of these specs.  Everything
here is *declarative* and immutable — frozen dataclasses with value
equality, so a plan can sit inside the frozen
:class:`~repro.sim.runner.SimulationConfig` and two configs with equal
plans compare equal.  The runtime that applies a plan to an overlay is
:class:`repro.faults.injector.FaultInjector`; it draws every random
choice (crash victims, partition sides) from a dedicated ``"faults"``
RNG stream, so a :class:`NullFaultPlan` run is bit-identical to a run
with no plan at all.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Optional, Tuple

from repro.core.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """Base of all fault specs: the round the fault fires in."""

    #: Wire/CLI name of the spec type (class attribute, mirrors
    #: :attr:`repro.obs.events.Event.kind`).
    fault: ClassVar[str] = "abstract"

    round: int

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ConfigurationError(
                f"fault round must be >= 1, got {self.round}"
            )


def _require_duration(duration: int) -> None:
    if duration < 1:
        raise ConfigurationError(f"fault duration must be >= 1, got {duration}")


@dataclasses.dataclass(frozen=True)
class MassCrash(FaultSpec):
    """``fraction`` of the currently-online peers depart simultaneously.

    ``graceful=False`` (the default) is a *crash*: victims vanish without
    referral hints, exactly the information loss the chain-metadata
    piggy-backing of §2.1.3 cannot paper over.  ``graceful=True`` is a
    coordinated *leave*: each victim hands its children a referral to
    its own parent before going (the behaviour churn departures already
    exhibit).  With ``rejoin_after``, all victims come back online in one
    burst that many rounds later — the thundering-herd scenario the
    source-contact backoff is designed for.
    """

    fault = "mass-crash"

    fraction: float = 0.2
    graceful: bool = False
    rejoin_after: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"crash fraction must be in (0, 1], got {self.fraction}"
            )
        if self.rejoin_after is not None and self.rejoin_after < 1:
            raise ConfigurationError("rejoin_after must be >= 1 round")


@dataclasses.dataclass(frozen=True)
class CrashNodes(FaultSpec):
    """Crash (or gracefully remove) an explicit set of node ids.

    The deterministic sibling of :class:`MassCrash` — no RNG is consumed
    selecting victims, which makes it the right spec for regression
    tests and walkthrough examples.  Ids of nodes already offline at
    injection time are skipped.
    """

    fault = "crash-nodes"

    node_ids: Tuple[int, ...] = ()
    graceful: bool = False
    rejoin_after: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_ids:
            raise ConfigurationError("CrashNodes needs at least one node id")
        if self.rejoin_after is not None and self.rejoin_after < 1:
            raise ConfigurationError("rejoin_after must be >= 1 round")


@dataclasses.dataclass(frozen=True)
class SourceOutage(FaultSpec):
    """The source rejects all direct contacts for ``duration`` rounds."""

    fault = "source-outage"

    duration: int = 5

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_duration(self.duration)


@dataclasses.dataclass(frozen=True)
class OracleOutage(FaultSpec):
    """The oracle answers no query at all for ``duration`` rounds."""

    fault = "oracle-outage"

    duration: int = 5

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_duration(self.duration)


@dataclasses.dataclass(frozen=True)
class StaleOracleView(FaultSpec):
    """The oracle serves a ``staleness``-rounds-old overlay snapshot.

    For ``duration`` rounds every query is answered from the snapshot
    taken ``staleness`` rounds before the query — candidates are
    filtered on their *recorded* delay/capacity, so the answer may point
    at a peer that has since departed, filled up, or moved deeper.  The
    protocol's own interaction-time re-validation (and, when enabled,
    the stale-referral requeue) absorbs the damage; this spec measures
    how much damage there is.
    """

    fault = "stale-view"

    duration: int = 5
    staleness: int = 5

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_duration(self.duration)
        if self.staleness < 1:
            raise ConfigurationError(
                f"staleness must be >= 1 round, got {self.staleness}"
            )


@dataclasses.dataclass(frozen=True)
class ViewPartition(FaultSpec):
    """The oracle's view splits into ``sides`` disjoint sides.

    Every consumer is assigned a side at injection time (from the
    dedicated faults RNG stream); until the partition heals after
    ``duration`` rounds the oracle only samples partners from the
    enquirer's own side.  Referrals and source contacts are *not*
    partitioned — the split models a directory/gossip view fracture, not
    a network-layer partition.
    """

    fault = "partition"

    duration: int = 10
    sides: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        _require_duration(self.duration)
        if self.sides < 2:
            raise ConfigurationError(f"a partition needs >= 2 sides, got {self.sides}")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A composition of fault specs, applied by round order.

    Specs firing in the same round apply in the order given.  The empty
    plan is valid (and is exactly :class:`NullFaultPlan`).
    """

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(f"{spec!r} is not a FaultSpec")

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        """Convenience constructor: ``FaultPlan.of(MassCrash(round=50))``."""
        return cls(specs=tuple(specs))

    @property
    def empty(self) -> bool:
        return not self.specs

    def max_staleness(self) -> int:
        """Deepest snapshot history any stale-view spec needs (0 if none)."""
        return max(
            (s.staleness for s in self.specs if isinstance(s, StaleOracleView)),
            default=0,
        )


@dataclasses.dataclass(frozen=True)
class NullFaultPlan(FaultPlan):
    """The explicit no-faults plan.

    Installing it is guaranteed bit-identical to ``faults=None``: the
    injector runs but fires nothing and draws no randomness (pinned by
    the golden-seed guard in ``tests/test_faults.py``).
    """


def parse_fault_plan(
    text: str, ms_per_round: Optional[float] = None
) -> FaultPlan:
    """Parse the CLI mini-DSL into a :class:`FaultPlan`.

    Comma-separated specs, each ``name@round[:arg[:arg]]``::

        crash@60:0.2            # 20% of online peers crash at round 60
        crash@60:0.2:rejoin=15  # ... and all rejoin in a burst at round 75
        leave@60:0.2            # graceful mass leave (referral handoff)
        source-outage@80:10     # source rejects contacts rounds 80..89
        oracle-outage@80:10     # oracle answers nothing rounds 80..89
        stale-view@80:10:5      # oracle serves a 5-round-old view
        partition@80:20         # 2-way oracle view split, heals at 100
        partition@80:20:3       # 3-way split

    **Millisecond windows.**  Under a continuous time model
    (``--time-model continuous:<profile>``, see ``docs/TIMING.md``)
    every round/duration figure may instead carry an ``ms`` suffix —
    ``crash@6000ms:0.2:rejoin=1500ms`` or ``source-outage@8000ms:1000ms``
    — and is converted to round ticks with the profile's ``round_ms``
    (``ms_per_round``), rounding to the nearest tick with a one-tick
    floor.  An ``ms`` token without a continuous time model is a
    configuration error, since there is no wall clock to anchor it to.

    >>> parse_fault_plan("crash@60:0.2,source-outage@80:10").specs[0].fault
    'mass-crash'
    >>> parse_fault_plan("crash@6000ms:0.2", ms_per_round=100.0).specs[0].round
    60
    """
    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            name, _, rest = chunk.partition("@")
            args = rest.split(":") if rest else []
            specs.append(_parse_spec(name.strip(), args, ms_per_round))
        except (ValueError, IndexError) as error:
            raise ConfigurationError(
                f"cannot parse fault spec {chunk!r}: {error}"
            ) from None
    if not specs:
        raise ConfigurationError(f"no fault specs in {text!r}")
    return FaultPlan(specs=tuple(specs))


def _rounds(token: str, ms_per_round: Optional[float]) -> int:
    """A round count from a DSL token: plain rounds or ``<float>ms``."""
    token = token.strip()
    if token.endswith("ms"):
        if ms_per_round is None:
            raise ConfigurationError(
                f"fault window {token!r} is in milliseconds, but the run "
                "has no wall clock — ms windows need "
                "--time-model continuous:<profile>"
            )
        return max(1, round(float(token[:-2]) / ms_per_round))
    return int(token)


def _parse_spec(name: str, args, ms_per_round: Optional[float]) -> FaultSpec:
    round_ = _rounds(args[0], ms_per_round)
    if name in ("crash", "leave"):
        fraction = float(args[1]) if len(args) > 1 else 0.2
        rejoin = None
        for extra in args[2:]:
            key, _, value = extra.partition("=")
            if key != "rejoin":
                raise ValueError(f"unknown crash option {extra!r}")
            rejoin = _rounds(value, ms_per_round)
        return MassCrash(
            round=round_,
            fraction=fraction,
            graceful=(name == "leave"),
            rejoin_after=rejoin,
        )
    if name == "source-outage":
        return SourceOutage(
            round=round_, duration=_rounds(args[1], ms_per_round)
        )
    if name == "oracle-outage":
        return OracleOutage(
            round=round_, duration=_rounds(args[1], ms_per_round)
        )
    if name == "stale-view":
        return StaleOracleView(
            round=round_,
            duration=_rounds(args[1], ms_per_round),
            staleness=_rounds(args[2], ms_per_round),
        )
    if name == "partition":
        sides = int(args[2]) if len(args) > 2 else 2
        return ViewPartition(
            round=round_, duration=_rounds(args[1], ms_per_round), sides=sides
        )
    raise ValueError(f"unknown fault {name!r}")
