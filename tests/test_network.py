"""Unit tests for the message-passing network substrate."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.network.latency import ConstantLatency, CoordinateLatency, UniformLatency
from repro.network.message import Message
from repro.network.topology import (
    connected_components,
    random_regularish_graph,
)
from repro.network.transport import Network
from repro.sim.engine import EventScheduler


class Recorder:
    def __init__(self):
        self.received = []

    def handle_message(self, message: Message) -> None:
        self.received.append(message)


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.latency("a", "b") == 2.5

    def test_constant_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1)

    def test_uniform_is_symmetric_and_stable(self):
        model = UniformLatency(1.0, 2.0, random.Random(1))
        ab = model.latency("a", "b")
        assert model.latency("b", "a") == ab
        assert model.latency("a", "b") == ab
        assert 1.0 <= ab <= 2.0

    def test_coordinate_respects_placement(self):
        model = CoordinateLatency(random.Random(1), base=0.0, scale=1.0)
        model.place("a", 0.0, 0.0)
        model.place("b", 3.0, 4.0)
        assert model.latency("a", "b") == pytest.approx(5.0)

    def test_coordinate_triangle_inequality(self):
        model = CoordinateLatency(random.Random(2), base=0.0, scale=1.0)
        ab = model.latency("a", "b")
        bc = model.latency("b", "c")
        ac = model.latency("a", "c")
        assert ac <= ab + bc + 1e-9


class TestNetwork:
    def test_delivery_after_latency(self):
        scheduler = EventScheduler()
        network = Network(scheduler, ConstantLatency(2.0))
        recorder = Recorder()
        network.register("b", recorder)
        network.send("a", "b", "ping", {"x": 1})
        scheduler.run_until(1.0)
        assert not recorder.received
        scheduler.run_until(2.0)
        assert len(recorder.received) == 1
        assert recorder.received[0].payload == {"x": 1}
        assert recorder.received[0].sent_at == 0.0

    def test_unroutable_messages_counted(self):
        scheduler = EventScheduler()
        network = Network(scheduler)
        network.send("a", "ghost", "ping", None)
        scheduler.run()
        assert network.dropped_unroutable == 1
        assert network.delivered == 0

    def test_unregister_drops_in_flight(self):
        scheduler = EventScheduler()
        network = Network(scheduler, ConstantLatency(5.0))
        recorder = Recorder()
        network.register("b", recorder)
        network.send("a", "b", "ping", None)
        network.unregister("b")
        scheduler.run()
        assert not recorder.received
        assert network.dropped_unroutable == 1

    def test_lossy_network_drops_fraction(self):
        scheduler = EventScheduler()
        network = Network(
            scheduler,
            ConstantLatency(0.1),
            loss_probability=0.5,
            rng=random.Random(3),
        )
        recorder = Recorder()
        network.register("b", recorder)
        for _ in range(200):
            network.send("a", "b", "ping", None)
        scheduler.run()
        assert 50 < len(recorder.received) < 150
        assert network.dropped_loss == 200 - len(recorder.received)

    def test_lossy_network_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Network(EventScheduler(), loss_probability=0.1)

    def test_message_ids_unique(self):
        scheduler = EventScheduler()
        network = Network(scheduler)
        a = network.send("a", "b", "x", None)
        b = network.send("a", "b", "x", None)
        assert a.message_id != b.message_id

    def test_reply_kind_convention(self):
        message = Message(sender="a", recipient="b", kind="dht.lookup", payload=None)
        assert message.reply_kind() == "dht.lookup.reply"


class TestTopology:
    def test_graph_is_connected(self):
        for seed in range(5):
            graph = random_regularish_graph(
                list(range(30)), degree=3, rng=random.Random(seed)
            )
            assert len(connected_components(graph)) == 1

    def test_degrees_at_least_requested(self):
        graph = random_regularish_graph(
            list(range(40)), degree=4, rng=random.Random(1)
        )
        assert all(len(neighbours) >= 4 for neighbours in graph.values())

    def test_small_population_complete_graph(self):
        graph = random_regularish_graph(["a", "b", "c"], degree=5, rng=random.Random(1))
        assert graph["a"] == {"b", "c"}

    def test_no_self_loops(self):
        graph = random_regularish_graph(
            list(range(25)), degree=3, rng=random.Random(2)
        )
        assert all(v not in neighbours for v, neighbours in graph.items())

    def test_symmetry(self):
        graph = random_regularish_graph(
            list(range(25)), degree=3, rng=random.Random(3)
        )
        for vertex, neighbours in graph.items():
            for neighbour in neighbours:
                assert vertex in graph[neighbour]

    def test_invalid_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            random_regularish_graph([1, 2, 3, 4], degree=0, rng=random.Random(1))
