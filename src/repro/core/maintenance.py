"""Maintenance operations (§3.2 and the Hybrid damping rule of §3.4).

A node whose latency constraint cannot be met in its current position must
discard its parent and locally restart construction — but doing so eagerly
("knee-jerk", in the paper's words) wastes the structure already built and
inflates overlay dynamicity.  The paper therefore derives *lazy* rules:

Greedy (Algorithm 1)
    Leave the parent iff ``DelayAt(i) == l_i + 1`` **and** ``Root(i) == 0``.
    The §3.2 Lemma proves this exact condition identifies precisely the
    first (most upstream) constraint-violated node of a chain, because the
    greedy invariant ``l_parent <= l_child`` holds on every edge.

Hybrid (§3.4)
    The invariant does not hold, so ``DelayAt`` can overshoot ``l_i + 1``
    arbitrarily and the exact condition is no longer sufficient.  Instead a
    node with ``DelayAt(i) > l_i`` and ``Root(i) == 0`` waits for a
    *maintenance timeout* before leaving, damping knee-jerk reactions.

Both rules fire only for nodes rooted at the source: an unrooted fragment
reports only *potential* delay, and tearing it down would destroy reusable
structure (the ``j <- i`` example of §3.2).
"""

from __future__ import annotations

from repro.core.node import Node
from repro.core.tree import Overlay


def greedy_maintenance(overlay: Overlay, node: Node) -> bool:
    """Algorithm 1: leave iff ``DelayAt == l + 1`` and rooted at the source.

    Returns ``True`` if the node discarded its parent.
    """
    if node.parent is None or node.is_source or not node.online:
        return False
    if not overlay.is_rooted(node):
        return False
    if overlay.delay_at(node) != node.latency + 1:
        return False
    former_parent = node.parent
    overlay.probe.maintenance_trigger(
        node.node_id, "greedy", node.latency + 1, node.latency
    )
    overlay.detach(node, reason="maintenance")
    node.rounds_without_parent = 0
    # The node knows its upstream chain (§2.1.3): being exactly one hop too
    # deep, its former grandparent is where it needs to sit — start there.
    if former_parent is not None and former_parent.parent is not None:
        node.referral = former_parent.parent
        overlay.probe.referral(
            node.node_id, former_parent.parent.node_id, "maintenance"
        )
    return True


def hybrid_maintenance(
    overlay: Overlay,
    node: Node,
    maintenance_timeout: int,
) -> bool:
    """Timeout-damped rule for the Hybrid algorithm (§3.4).

    The node's :attr:`~repro.core.node.Node.violation_rounds` counter is
    advanced while ``DelayAt > l`` and ``Root == 0`` hold, cleared when the
    violation disappears (e.g. an upstream reconfiguration fixed it), and
    the parent is discarded only once the counter exceeds
    ``maintenance_timeout`` consecutive rounds.

    Returns ``True`` if the node discarded its parent this round.
    """
    if node.parent is None or node.is_source or not node.online:
        return False
    delay = overlay.delay_at(node)
    violated = overlay.is_rooted(node) and delay > node.latency
    if not violated:
        node.violation_rounds = 0
        return False
    node.violation_rounds += 1
    if node.violation_rounds <= maintenance_timeout:
        return False
    # Walk the (locally known, §2.1.3) upstream chain to the deepest
    # ancestor shallow enough to satisfy this node, and start the search
    # there — the iterative "use k as next reference" of Alg. 2, jumped in
    # one go because the chain is piggy-backed anyway.  The node is rooted
    # here, so every ancestor's delay is exactly one less per hop up:
    # derive them by decrementing instead of re-querying per step (the
    # former per-ancestor ``delay_at`` walk made this scan O(depth²)).
    ancestor = node.parent
    ancestor_delay = delay - 1
    while (
        ancestor is not None
        and not ancestor.is_source
        and ancestor_delay >= node.latency
    ):
        ancestor = ancestor.parent
        ancestor_delay -= 1
    overlay.probe.maintenance_trigger(node.node_id, "hybrid", delay, node.latency)
    overlay.detach(node, reason="maintenance")
    node.violation_rounds = 0
    node.rounds_without_parent = 0
    if ancestor is not None:
        node.referral = ancestor
        overlay.probe.referral(node.node_id, ancestor.node_id, "maintenance")
    return True


def eager_maintenance(overlay: Overlay, node: Node) -> bool:
    """The knee-jerk rule the paper argues *against* (§3.2): leave as soon
    as the latency constraint is violated, even in unrooted fragments.

    Provided as an ablation baseline
    (``benchmarks/test_ablation_maintenance.py``) to quantify how much the
    lazy rules buy.
    """
    if node.parent is None or node.is_source or not node.online:
        return False
    delay = overlay.delay_at(node)
    if delay <= node.latency:
        return False
    overlay.probe.maintenance_trigger(node.node_id, "eager", delay, node.latency)
    overlay.detach(node, reason="maintenance")
    node.rounds_without_parent = 0
    return True
