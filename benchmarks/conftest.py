"""Shared configuration for the benchmark harness.

Each bench regenerates one of the paper's figures (or an ablation) at a
reduced-but-shape-preserving scale, asserts the qualitative claims, and
prints the rows so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction report.  Full-scale numbers come from
``python -m repro.experiments.<name>`` and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentProfile

#: Bench-scale profile; big enough that every qualitative shape holds.
BENCH = ExperimentProfile(name="bench", population=80, repeats=3, max_rounds=6000)

#: Smaller profile for the wide grids (Fig. 3's 16 cells).
BENCH_GRID = ExperimentProfile(
    name="bench-grid", population=60, repeats=3, max_rounds=4000
)


@pytest.fixture
def bench_profile() -> ExperimentProfile:
    return BENCH


@pytest.fixture
def grid_profile() -> ExperimentProfile:
    return BENCH_GRID


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are internally repeated (median-of-N protocol), so a
    single timed round is both sufficient and necessary to keep the
    harness fast.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
