"""Registered variants of the paper-figure grids (Fig. 2/3/4).

Each benchmark re-runs one figure's seed sweep at bench scale (the
``QUICK`` experiment profile) — or at an even smaller smoke scale under
``--quick`` — and reports the **seeded, exact** per-cell medians as
deterministic metrics plus the sweep's wall-clock as a timing metric.
Because the medians are bit-identical for identical code, a committed
baseline turns these into a cross-machine behavior gate: any change
that moves a figure's numbers trips ``repro bench compare`` until the
baseline is regenerated deliberately.

Cells that starve by design (Fig. 3's O2a/O2b on some families report a
``None`` median) are excluded from the metric set — the ``stuck``
shape is asserted by the figure's own pytest-benchmark file, not here.
"""

from __future__ import annotations

import time
from typing import Dict, Sequence

from repro.bench.registry import BenchContext, BenchResult, Metric, register
from repro.experiments import figure2, figure3, figure4
from repro.experiments.config import QUICK, ExperimentProfile

#: The --quick smoke scale shared by the three figure benchmarks.
SMOKE = ExperimentProfile(name="smoke", population=30, repeats=2, max_rounds=800)

_SECONDS = Metric(
    unit="s",
    higher_is_better=False,
    tolerance=0.50,
    description="sweep wall-clock",
)

_ROUNDS = Metric(
    unit="rounds",
    higher_is_better=False,
    tolerance=0.0,
    deterministic=True,
    description="median construction latency (seeded, exact)",
)


def _profile(ctx: BenchContext) -> ExperimentProfile:
    return SMOKE if ctx.quick else QUICK


@register(
    "figure2.spread",
    tags=("figures", "grid"),
    metrics={"seconds": _SECONDS, "rounds": _ROUNDS},
    description="Fig. 2 convergence-variation sweep (per-family medians)",
)
def figure2_spread(ctx: BenchContext) -> BenchResult:
    profile = _profile(ctx)
    families: Sequence[str] = (
        ("Rand", "BiUnCorr") if ctx.quick else ("Rand", "BiCorr", "BiUnCorr")
    )
    repeats = int(ctx.opt("repeats", 3 if ctx.quick else 5))
    start = time.perf_counter()
    summaries = figure2.run(profile, repeats=repeats, families=families)
    elapsed = time.perf_counter() - start
    metrics: Dict[str, float] = {"seconds": elapsed}
    for family, summary in summaries.items():
        metrics[f"rounds.{family}"] = summary.median
    detail = {
        "benchmark": "figure2.spread",
        "profile": profile.name,
        "population": profile.population,
        "repeats": repeats,
        "families": list(families),
        "summaries": {
            family: {
                "n": s.n,
                "min": s.minimum,
                "median": s.median,
                "max": s.maximum,
                "spread_ratio": s.spread_ratio,
            }
            for family, s in summaries.items()
        },
    }
    return BenchResult(metrics=metrics, detail=detail)


@register(
    "figure3.oracle_grid",
    tags=("figures", "grid"),
    metrics={"seconds": _SECONDS, "rounds": _ROUNDS},
    description="Fig. 3 (family x oracle) grid (per-cell medians)",
)
def figure3_oracle_grid(ctx: BenchContext) -> BenchResult:
    profile = _profile(ctx)
    if ctx.quick:
        families: Sequence[str] = ("Rand", "BiCorr")
        oracles: Sequence[str] = ("random", "random-delay")
    else:
        from repro.oracles.base import oracle_names
        from repro.workloads import PAPER_FAMILIES

        families, oracles = PAPER_FAMILIES, tuple(oracle_names())
    start = time.perf_counter()
    grid = figure3.run(profile, families=families, oracles=oracles)
    elapsed = time.perf_counter() - start
    metrics: Dict[str, float] = {"seconds": elapsed}
    stuck = []
    for (family, oracle), runs in grid.items():
        if runs.median is None:
            stuck.append(f"{family}/{oracle}")
        else:
            metrics[f"rounds.{family}.{oracle}"] = runs.median
    detail = {
        "benchmark": "figure3.oracle_grid",
        "profile": profile.name,
        "population": profile.population,
        "repeats": profile.repeats,
        "families": list(families),
        "oracles": list(oracles),
        "stuck_cells": stuck,
        "grid": {
            f"{family}/{oracle}": runs.values
            for (family, oracle), runs in grid.items()
        },
    }
    return BenchResult(metrics=metrics, detail=detail)


@register(
    "figure4.greedy_vs_hybrid",
    tags=("figures", "grid"),
    metrics={"seconds": _SECONDS, "rounds": _ROUNDS},
    description="Fig. 4 Greedy-vs-Hybrid on BiCorr, static and churn",
)
def figure4_greedy_vs_hybrid(ctx: BenchContext) -> BenchResult:
    profile = _profile(ctx)
    start = time.perf_counter()
    grid = figure4.run(profile)
    elapsed = time.perf_counter() - start
    metrics: Dict[str, float] = {"seconds": elapsed}
    stuck = []
    for (algorithm, regime), runs in grid.items():
        if runs.median is None:
            stuck.append(f"{algorithm}/{regime}")
        else:
            metrics[f"rounds.{algorithm}.{regime}"] = runs.median
    detail = {
        "benchmark": "figure4.greedy_vs_hybrid",
        "profile": profile.name,
        "population": profile.population,
        "repeats": profile.repeats,
        "family": figure4.FAMILY,
        "stuck_cells": stuck,
        "grid": {
            f"{algorithm}/{regime}": runs.values
            for (algorithm, regime), runs in grid.items()
        },
    }
    return BenchResult(metrics=metrics, detail=detail)
