"""The continuous-time construction engine.

The paper's asynchrony extension (§5.3) models heterogeneous interaction
durations as "busy for k rounds" — a bolt-on over the synchronous round
clock, which can only ever report staleness in hops.  This module
promotes the :class:`~repro.sim.engine.EventScheduler` to the *primary*
clock: every consumer acts on its own timeline, and how long each action
takes is no longer a uniform draw but the sum of the real network legs
it exercised —

* a **construction step** by a parentless node costs one oracle-contact
  round trip (node ↔ the directory's PoP) plus, when the step ended in
  an attach, the attach-handshake round trip to the chosen parent;
* a **maintenance check** is local and free (observing one's own delay
  needs no network), so parented nodes self-check once per round tick;
  a check that ends in a detach (or a move) pays the handshake round
  trip to the forsaken parent before the node can act again.

Per-edge latencies come from a seeded :class:`~repro.locality.geo.\
GeoLatencyModel` — region/PoP matrix, last-mile terms, all in wall-clock
milliseconds — so a consumer behind a trans-continental path genuinely
interacts less often than a same-metro one, which is exactly the
asynchrony observation the paper reports, now with geographic teeth.

**Round-domain bookkeeping is unchanged.**  Churn, the oracle's
per-round refresh, fault injection and measurement all fire on a
periodic *boundary tick* every ``profile.round_ms`` milliseconds, and
each tick increments the same round counter the synchronous runner
uses.  Everything round-keyed (fault plans, recovery metrics, health
timeseries, staleness attribution) therefore works verbatim, and the
engine adds the wall-clock view on top: ``sim_time_ms``, event counts,
millisecond staleness percentiles and ``time_to_recover_ms`` on the
:class:`~repro.sim.runner.SimulationResult`.

**Determinism.**  The engine introduces no new RNG draws at all: action
durations are pure functions of the seeded latency model, the event
queue breaks ties FIFO, and initial/rejoin scheduling walks the roster
in id order — so a continuous run is bit-identical across repeats and
across :mod:`repro.par` pooled workers, and rounds mode (which never
constructs this class) is bit-identical to pre-continuous behavior.
Both pins live in ``tests/test_continuous_time.py``; the model and a
worked hop-to-ms example are documented in ``docs/TIMING.md``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.core.node import Node
from repro.feeds.staleness import staleness_percentiles
from repro.locality.geo import GeoLatencyModel, get_profile
from repro.obs.probe import Probe
from repro.sim.engine import EventScheduler
from repro.sim.runner import Simulation, SimulationConfig, SimulationResult
from repro.sim.rng import derive_seed
from repro.sim.timemodel import parse_time_model
from repro.workloads.base import Workload

#: Floor on any action duration, so a zero-latency profile can never
#: produce a same-timestamp self-rescheduling loop.
MIN_ACTION_MS = 0.05


class ContinuousSimulation:
    """One construction run on the continuous clock.

    Wraps an ordinary :class:`~repro.sim.runner.Simulation` (same
    streams, same oracle wiring, same fault plan, same observability
    taps) and replaces its round loop with event-driven per-node
    actions.  Attribute access falls through to the wrapped simulation,
    so callers that inspect ``.overlay`` / ``.metrics`` / ``.timings`` /
    ``.health`` work on either engine.
    """

    def __init__(
        self,
        workload: Workload,
        config: SimulationConfig,
        oracle_factory=None,
        probe: Optional[Probe] = None,
    ) -> None:
        model = parse_time_model(config.time_model)
        if not model.continuous:
            raise ConfigurationError(
                "ContinuousSimulation needs a continuous time model; "
                f"got {config.time_model!r}"
            )
        self.sim = Simulation(
            workload, config, oracle_factory=oracle_factory, probe=probe
        )
        self.profile = get_profile(model.profile)
        # The latency substrate hangs off its own derived seed, so geo
        # placement can never perturb (or be perturbed by) the protocol
        # streams — the same dedicated-stream rule repro.faults follows.
        self.geo = GeoLatencyModel(
            self.profile, derive_seed(config.seed, "geo")
        )
        self.scheduler = EventScheduler()
        self.round_ms = self.profile.round_ms
        #: Node ids with a queued (not yet fired) action event.
        self._queued: set = set()

    def __getattr__(self, name: str):
        # Fallback for everything Simulation owns (overlay, metrics,
        # timings, health, attributor, oracle, algorithm, config, ...).
        return getattr(self.sim, name)

    # -- scheduling -----------------------------------------------------

    def _schedule_action(self, node: Node, delay_ms: float) -> None:
        self._queued.add(node.node_id)
        self.scheduler.schedule(max(MIN_ACTION_MS, delay_ms), self._act, node)

    def _schedule_idle_actors(self) -> None:
        """Queue a first action for every online consumer without one.

        Covers the initial population, churn rejoins and late joiners
        alike.  Walks the roster in id order and staggers each node's
        first action by its (deterministic) one-way latency to the
        directory, folded into one round tick — so a fresh cohort does
        not act in one synchronized stampede, and nearby nodes get
        going sooner than far ones.
        """
        for node in self.sim.overlay.online_consumers:
            if node.node_id in self._queued:
                continue
            offset = self.geo.one_way_ms(node.node_id, -1) % self.round_ms
            self._schedule_action(node, offset)

    # -- the per-node action event --------------------------------------

    def _act(self, node: Node) -> None:
        """One node acts at the current scheduler time."""
        self._queued.discard(node.node_id)
        overlay = self.sim.overlay
        if node not in overlay or not node.online:
            # Departed (churn/crash) mid-flight: the action dissolves.
            # A rejoin is re-queued by the next boundary's roster scan.
            return
        algorithm = self.sim.algorithm
        timings_add = self.sim.timings.add
        geo = self.geo
        started = time.perf_counter()
        old_parent = node.parent
        if old_parent is not None:
            algorithm.maintain(node)
            timings_add("maintain", time.perf_counter() - started)
            if node.parent is old_parent:
                # Still happy: the self-check is local; next one in a
                # round tick.
                delay = self.round_ms
            else:
                # Detached or moved: pay the handshake to the forsaken
                # parent (plus the new one's, if the move re-attached).
                delay = geo.rtt_ms(node.node_id, old_parent.node_id)
                if node.parent is not None:
                    delay += geo.rtt_ms(node.node_id, node.parent.node_id)
        else:
            algorithm.step(node)
            timings_add("step", time.perf_counter() - started)
            # Every construction step starts with an oracle contact
            # (timeout bookkeeping included); an attach adds the
            # handshake round trip to the accepting parent.
            delay = geo.oracle_rtt_ms(node.node_id)
            if node.parent is not None:
                delay += geo.rtt_ms(node.node_id, node.parent.node_id)
        self._schedule_action(node, delay)

    # -- the boundary tick ----------------------------------------------

    def _run_boundary(self) -> None:
        """Fire all actions up to the next round boundary, then run the
        round-domain phases (churn / oracle / faults / measure) exactly
        as :meth:`~repro.sim.runner.Simulation.run_round` orders them."""
        sim = self.sim
        boundary = (sim.now + 1) * self.round_ms
        self.scheduler.run_until(boundary)
        sim.now += 1
        round_start = time.perf_counter()
        sim.probe.begin_round(sim.now)
        departures = rejoins = 0
        if sim.churn is not None:
            with sim.timings.measure("churn"):
                events = sim.churn.step(sim.now)
                departures, rejoins = len(events.left), len(events.rejoined)
        with sim.timings.measure("oracle"):
            sim.oracle.on_round(sim.now)
        if sim.injector is not None:
            with sim.timings.measure("faults"):
                sim.injector.inject(sim.now)
        with sim.timings.measure("measure"):
            sim.metrics.record(sim.now, departures=departures, rejoins=rejoins)
            if sim.trace is not None:
                sim.trace.capture(sim.now)
            if sim.health is not None:
                sim.health.capture(
                    sim.now, departures=departures, rejoins=rejoins
                )
            if sim.attributor is not None:
                sim.attributor.observe_round(sim.now)
        # Rejoined / newly admitted consumers enter the event loop here.
        self._schedule_idle_actors()
        sim.probe.end_round(sim.now, time.perf_counter() - round_start)

    # -- driving --------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to convergence or the round budget; return the result."""
        sim = self.sim
        self._schedule_idle_actors()
        while sim.now < sim.config.max_rounds:
            self._run_boundary()
            if (
                sim.config.stop_at_convergence
                and sim.metrics.records[-1].quality.converged
            ):
                break
        return self.result()

    # -- wall-clock staleness -------------------------------------------

    def staleness_ms_series(self) -> List[float]:
        """Worst-case wall-clock staleness per rooted online consumer.

        The continuous analogue of the paper's ``DelayAt * T`` bound: a
        full pull-period wait at the source's direct child, plus the
        summed one-way transit legs down the consumer's overlay path.
        Deterministic given the overlay and the seeded latency model.
        """
        overlay = self.sim.overlay
        out: List[float] = []
        for node in overlay.online_consumers:
            if not overlay.is_rooted(node):
                continue
            ms = self.profile.pull_period_ms
            cursor = node
            while cursor.parent is not None:
                ms += self.geo.one_way_ms(
                    cursor.parent.node_id, cursor.node_id
                )
                cursor = cursor.parent
            out.append(ms)
        return out

    def result(self) -> SimulationResult:
        """The round-domain result, extended with the wall-clock view."""
        base = self.sim.result()
        series = self.staleness_ms_series()
        percentiles = (
            staleness_percentiles(series, qs=(50.0, 99.0))
            if series
            else {"p50": None, "p99": None}
        )
        return dataclasses.replace(
            base,
            time_model=self.sim.config.time_model,
            sim_time_ms=self.scheduler.now,
            events_fired=self.scheduler.fired,
            staleness_ms_p50=percentiles["p50"],
            staleness_ms_p99=percentiles["p99"],
            time_to_recover_ms=(
                base.time_to_recover * self.round_ms
                if base.time_to_recover is not None
                else None
            ),
        )


def hop_delay_from_geo(
    geo: GeoLatencyModel, pull_period_ms: float
):
    """A dissemination ``hop_delay_model`` serving real geo latencies.

    Returns a callable ``(parent, child) -> delay in units of T`` for
    :class:`~repro.feeds.dissemination.LagOverDissemination`, so feed
    transit legs — and therefore the :mod:`repro.obs` delivery spans —
    carry the substrate's per-edge milliseconds instead of uniform
    draws.  The engine clamps the value into ``(0, 1]`` per its +1-hop
    accounting contract.
    """

    def model(parent: Node, child: Node) -> float:
        return geo.one_way_ms(parent.node_id, child.node_id) / pull_period_ms

    return model
