"""Self-stabilization smoke benchmark: recovery from corrupted state.

One registered benchmark:

``stabilize.converge``
    Build a converged overlay, corrupt it with the seeded generator
    (:func:`repro.stabilize.corrupt_overlay` — states no protocol run
    could reach), then recover with
    :func:`repro.stabilize.stabilize` and pin the exact recovery round
    count per (algorithm × realization) cell.  Deterministic, zero
    tolerance: the perf gate catches both a broken recovery (hard
    failure) and a silently changed recovery trajectory.  Hard-fails if
    any cell misses the documented :func:`repro.stabilize.round_bound`
    or leaves ``check_integrity()`` raising.

The property suite (``tests/test_stabilize.py``) explores random
corruption seeds; this benchmark pins one seed and tracks the numbers
over time.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.bench.registry import BenchContext, BenchResult, Metric, register
from repro.core.errors import LagOverError
from repro.core.tree import Overlay
from repro.stabilize import corrupt_overlay, round_bound, stabilize
from repro.stabilize.harness import converge
from repro.workloads import make

ALGORITHMS = ("greedy", "hybrid")
REALIZATIONS = ("omniscient", "sharded")


def metric_key(algorithm: str, realization: str) -> str:
    return f"rounds.{algorithm}.{realization}"


_METRICS: Dict[str, Metric] = {
    metric_key(algorithm, realization): Metric(
        unit="rounds",
        higher_is_better=False,
        tolerance=0.0,
        deterministic=True,
        description=(
            f"recovery rounds from seeded corruption, "
            f"{algorithm} × {realization}"
        ),
    )
    for algorithm in ALGORITHMS
    for realization in REALIZATIONS
}


def run_cell(
    algorithm: str,
    realization: str,
    size: int,
    seed: int,
    corruption_seed: int,
    intensity: float,
) -> dict:
    """Build → corrupt → stabilize one cell; returns outcome numbers."""
    workload = make("Rand", size=size, seed=seed)
    overlay = Overlay(source_fanout=workload.source_fanout)
    overlay.add_population(workload.population)
    built, build_rounds = converge(
        overlay,
        algorithm=algorithm,
        realization=realization,
        seed=seed,
        max_rounds=4000,
    )
    if not built:
        return {"error": "construction itself failed to converge"}
    applied = corrupt_overlay(
        overlay, random.Random(corruption_seed), intensity=intensity
    )
    try:
        outcome = stabilize(
            overlay,
            algorithm=algorithm,
            realization=realization,
            seed=corruption_seed,
        )
    except LagOverError as exc:
        return {"error": f"integrity violated during recovery: {exc}"}
    return {
        "build_rounds": build_rounds,
        "corruptions": applied,
        "converged": outcome.converged,
        "rounds": outcome.rounds,
        "bound": outcome.bound,
    }


@register(
    "stabilize.converge",
    tags=("resilience", "stabilize"),
    metrics=_METRICS,
    description="Seeded corruption-recovery rounds, greedy/hybrid × "
    "omniscient/sharded",
)
def stabilize_converge(ctx: BenchContext) -> BenchResult:
    size = int(ctx.opt("size", 24 if ctx.quick else 60))
    seed = int(ctx.opt("seed", 3))
    corruption_seed = int(ctx.opt("corruption_seed", 7))
    intensity = float(ctx.opt("intensity", 0.25))
    metrics: Dict[str, float] = {}
    failures: List[str] = []
    cells: Dict[str, dict] = {}
    for algorithm in ALGORITHMS:
        for realization in REALIZATIONS:
            key = metric_key(algorithm, realization)
            cell = run_cell(
                algorithm, realization, size, seed, corruption_seed, intensity
            )
            cells[key] = cell
            if "error" in cell:
                failures.append(f"{key}: {cell['error']}")
                continue
            if not cell["converged"]:
                failures.append(
                    f"{key}: did not re-converge within the documented "
                    f"bound of {cell['bound']} rounds"
                )
                continue
            metrics[key] = float(cell["rounds"])
    detail = {
        "benchmark": "stabilize.converge",
        "workload": "Rand",
        "size": size,
        "seed": seed,
        "corruption_seed": corruption_seed,
        "intensity": intensity,
        "round_bound": round_bound(size),
        "cells": cells,
    }
    return BenchResult(metrics=metrics, detail=detail, failures=tuple(failures))
