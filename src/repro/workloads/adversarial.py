"""The §3.3.1 adversarial counter-example.

The paper exhibits a population for which the sufficiency condition fails
yet a valid LagOver exists — and on which the Greedy algorithm provably
cannot reach it, because its edge invariant (``l_parent <= l_child``)
forbids placing the strict-latency peers *below* the high-fanout lax peer
that the only feasible configuration requires upstream.

**A faithfulness note.**  The paper's printed population is
``{0_1, 1_1^1, 2_1^2, 3_2^4, 4_1^3, 5_0^3}`` with the claimed feasible
configuration ``5 <- 3, 4 <- 3, 3 <- 2, 2 <- 1, 1 <- 0``.  Under the
delay model the paper itself uses everywhere else (Fig. 1's walkthrough
and the Alg. 1 lemma: a direct puller observes delay 1, each hop adds 1),
that configuration puts nodes 4 and 5 at delay 4 — violating their
constraint of 3 — and exhaustive search
(:func:`repro.core.sufficiency.find_feasible_configuration`) confirms *no*
feasible configuration exists for the printed numbers: nodes 4 and 5 both
need depth <= 3, but the single chain ``0 -> 1 -> 2`` offers only one slot
at depth 3.  The printed example is consistent only with a delay model in
which direct pullers observe delay 0, which contradicts Fig. 1.

We therefore reproduce the example with the minimal repair that restores
the paper's intent under its own Fig. 1 delay model: node 3's latency
constraint is relaxed from 4 to 5 (one character of the paper changes).
The repaired population keeps every property §3.3.1 claims:

* the sufficiency condition fails (|N_4| = 2 nodes with constraint 4, but
  only 1 unit of carried-over capacity reaches that class);
* a valid configuration exists: ``0 -> 1 -> 2 -> 3 -> {4, 5}`` — the
  high-fanout lax node 3 sits *above* the two stricter nodes 4 and 5;
* the Greedy algorithm can never reach it: its invariant forbids the
  edges ``4 <- 3`` and ``5 <- 3`` (parent constraint 5 > child's 4), and
  every invariant-respecting configuration strands at least one node
  (verified exhaustively in the tests);
* the Hybrid algorithm, which prefers high fanout upstream, can reach it.

Both the verbatim and the repaired populations are exported so tests can
document the discrepancy explicitly.
"""

from __future__ import annotations

from typing import List

from repro.core.constraints import NodeSpec
from repro.workloads.base import NamedSpec, Workload, make_workload

#: Source fanout of the counter-example ("0_1 means that the source will
#: directly support only 1 consumer").
ADVERSARIAL_SOURCE_FANOUT = 1


def paper_adversarial_population() -> List[NamedSpec]:
    """The §3.3.1 population exactly as printed: ``1_1^1 2_1^2 3_2^4 4_1^3
    5_0^3``.  Infeasible under the Fig. 1 delay model (see module docs)."""
    return [
        ("1", NodeSpec(latency=1, fanout=1)),
        ("2", NodeSpec(latency=2, fanout=1)),
        ("3", NodeSpec(latency=4, fanout=2)),
        ("4", NodeSpec(latency=3, fanout=1)),
        ("5", NodeSpec(latency=3, fanout=0)),
    ]


def adversarial_population() -> List[NamedSpec]:
    """The repaired counter-example: node 3 relaxed to ``3_2^5``."""
    return [
        ("1", NodeSpec(latency=1, fanout=1)),
        ("2", NodeSpec(latency=2, fanout=1)),
        ("3", NodeSpec(latency=5, fanout=2)),
        ("4", NodeSpec(latency=4, fanout=1)),
        ("5", NodeSpec(latency=4, fanout=0)),
    ]


def paper_adversarial_workload() -> Workload:
    """Workload wrapper for the verbatim (infeasible) printed population."""
    return make_workload(
        name="Adversarial-3.3.1(paper-verbatim)",
        source_fanout=ADVERSARIAL_SOURCE_FANOUT,
        population=paper_adversarial_population(),
    )


def adversarial_workload() -> Workload:
    """Workload wrapper for the repaired §3.3.1 counter-example."""
    return make_workload(
        name="Adversarial-3.3.1",
        source_fanout=ADVERSARIAL_SOURCE_FANOUT,
        population=adversarial_population(),
    )
