"""The normalized bench JSON schema (``repro.bench/v1``).

Three document shapes share one schema family:

**Record** (``repro.bench/v1``) — one benchmark's full result::

    {
      "schema": "repro.bench/v1",
      "name": "chain_index.churn",
      "tags": ["core", "index"],
      "quick": true,
      "repeats": 1,
      "warmup": 0,
      "metrics": {
        "rounds_per_sec": {
          "values": [297.1], "median": 297.1, "iqr": 0.0,
          "unit": "rounds/s", "higher_is_better": true,
          "tolerance": 0.35, "deterministic": false
        }
      },
      "detail": { ... benchmark-specific payload ... },
      "failures": [],
      "seconds": 0.11,
      "env": {"git_sha": "...", "python": "3.11.9", "platform": "Linux",
              "implementation": "CPython", "machine": "x86_64", "cpu_count": 1},
      "recorded_at": "2026-08-06T12:00:00Z"
    }

**Run document** (``repro.bench/run/v1``) — what ``repro bench run
--output`` writes: ``{"schema", "env", "recorded_at", "records": [...]}``.

**History line** (``repro.bench/history/v1``) — the compact per-record
line appended to ``BENCH_HISTORY.jsonl``: name, quick flag, metric
*medians* only, failure count, env, timestamp.

The legacy ``BENCH_*.json`` files written by ``benchmarks/*.py`` are
*views* of a record: the record's ``detail`` payload hoisted to the top
level (so their historical keys keep working) plus the normalized
envelope keys, see :func:`legacy_view`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence

RECORD_SCHEMA = "repro.bench/v1"
RUN_SCHEMA = "repro.bench/run/v1"
HISTORY_SCHEMA = "repro.bench/history/v1"

#: Keys every record must carry.
RECORD_REQUIRED = (
    "schema",
    "name",
    "tags",
    "quick",
    "repeats",
    "warmup",
    "metrics",
    "detail",
    "failures",
    "seconds",
    "env",
    "recorded_at",
)

#: Keys every per-metric entry must carry.
METRIC_REQUIRED = (
    "values",
    "median",
    "iqr",
    "unit",
    "higher_is_better",
    "tolerance",
    "deterministic",
)


def utc_now() -> str:
    """An ISO-8601 UTC timestamp (second resolution)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def validate_record(record: Mapping[str, object]) -> None:
    """Raise ``ValueError`` naming the first schema violation."""
    if not isinstance(record, Mapping):
        raise ValueError(f"record must be an object, got {type(record).__name__}")
    for key in RECORD_REQUIRED:
        if key not in record:
            raise ValueError(f"record is missing required key {key!r}")
    if record["schema"] != RECORD_SCHEMA:
        raise ValueError(
            f"record schema is {record['schema']!r}, expected {RECORD_SCHEMA!r}"
        )
    metrics = record["metrics"]
    if not isinstance(metrics, Mapping):
        raise ValueError("record 'metrics' must be an object")
    for name, entry in metrics.items():
        if not isinstance(entry, Mapping):
            raise ValueError(f"metric {name!r} must be an object")
        for key in METRIC_REQUIRED:
            if key not in entry:
                raise ValueError(f"metric {name!r} is missing key {key!r}")


def make_run_document(
    records: Sequence[Mapping[str, object]],
    env: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The run document wrapping ``records``."""
    if env is None:
        from repro.bench.env import fingerprint

        env = fingerprint()
    return {
        "schema": RUN_SCHEMA,
        "env": dict(env),
        "recorded_at": utc_now(),
        "records": [dict(record) for record in records],
    }


def history_record(record: Mapping[str, object]) -> Dict[str, object]:
    """The compact history line for one record (medians only)."""
    metrics = record.get("metrics", {})
    return {
        "schema": HISTORY_SCHEMA,
        "name": record["name"],
        "quick": record.get("quick", False),
        "metrics": {
            name: entry.get("median") for name, entry in metrics.items()
        },
        "failures": len(record.get("failures", ())),
        "env": dict(record.get("env", {})),
        "recorded_at": record.get("recorded_at", utc_now()),
    }


def legacy_view(record: Mapping[str, object]) -> Dict[str, object]:
    """The legacy ``BENCH_*.json`` shape of a record.

    The benchmark-specific ``detail`` payload (the pre-harness file
    layout) is hoisted to the top level and the normalized envelope
    rides along, so old consumers keep reading their keys and new ones
    get the schema.
    """
    view: Dict[str, object] = dict(record.get("detail", {}))
    for key in RECORD_REQUIRED:
        if key != "detail":
            view[key] = record[key]
    return view


def metric_medians(record: Mapping[str, object]) -> Dict[str, float]:
    """``{metric: median}`` of a full record or a compact history line."""
    metrics = record.get("metrics", {})
    medians: Dict[str, float] = {}
    for name, entry in metrics.items():
        if isinstance(entry, Mapping):
            value = entry.get("median")
        else:
            value = entry
        if value is not None:
            medians[name] = float(value)
    return medians


def record_names(records: Sequence[Mapping[str, object]]) -> List[str]:
    return [str(record.get("name")) for record in records]
