"""Parallel-sweep benchmark: the Fig. 3 grid, serial vs process pools.

The registry port of ``benchmarks/parallel_sweep.py`` (now a thin CLI
wrapper over this module).  The grid is run once on the serial
reference executor, then once per requested pool size; the suite
hard-fails if any pooled grid is not **bit-identical** to the serial
one (the :mod:`repro.par` determinism contract) and reports wall-clock
speedups.

The measured speedup is bounded by the CPUs actually available: a
repeat-median sweep is pure CPU-bound Python, so on an M-core machine
the pool can at best approach min(workers, M)×; on a single-core
container the parallel runs measure pure engine overhead (expect ~1×).
The record's environment fingerprint carries ``cpu_count`` so numbers
from different machines are never gated against each other.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Sequence, Tuple

from repro.bench.registry import BenchContext, BenchResult, Metric, register
from repro.experiments import figure3
from repro.experiments.config import QUICK, ExperimentProfile
from repro.oracles.base import oracle_names
from repro.par import ProcessPoolSweepExecutor, SerialExecutor
from repro.workloads import PAPER_FAMILIES


def run_grid(profile: ExperimentProfile, families, oracles, executor) -> dict:
    """One timed Fig. 3 grid run under the given executor."""
    start = time.perf_counter()
    grid = figure3.run(
        profile, families=families, oracles=oracles, executor=executor
    )
    elapsed = time.perf_counter() - start
    return {
        "executor": executor.name,
        "workers": executor.workers,
        "seconds": elapsed,
        "cells": len(grid),
        "runs": len(grid) * profile.repeats,
        "grid": {
            f"{family}/{oracle}": runs.values
            for (family, oracle), runs in grid.items()
        },
    }


def run_scaling(
    profile: ExperimentProfile,
    families: Sequence[str],
    oracles: Sequence[str],
    worker_counts: Sequence[int],
) -> Tuple[dict, List[dict], List[str]]:
    """Serial reference plus one pooled run per worker count."""
    serial = run_grid(profile, families, oracles, SerialExecutor())
    parallel: List[dict] = []
    failures: List[str] = []
    for workers in worker_counts:
        run = run_grid(
            profile, families, oracles, ProcessPoolSweepExecutor(workers)
        )
        run["speedup"] = serial["seconds"] / run["seconds"]
        run["identical_to_serial"] = run["grid"] == serial["grid"]
        if not run["identical_to_serial"]:
            failures.append(f"{workers}-worker grid diverged from serial")
        parallel.append(run)
    return serial, parallel, failures


@register(
    "parallel_sweep.grid",
    tags=("par", "scaling", "perf"),
    metrics={
        "serial_seconds": Metric(
            unit="s",
            higher_is_better=False,
            tolerance=0.50,
            description="wall-clock of the serial reference grid",
        ),
        "speedup_w2": Metric(
            unit="x",
            higher_is_better=True,
            tolerance=0.50,
            description="2-worker pool speedup over serial",
        ),
        "identical": Metric(
            higher_is_better=True,
            tolerance=0.0,
            deterministic=True,
            description="1.0 iff every pooled grid was bit-identical",
        ),
    },
    description="Fig. 3 grid under serial vs process-pool executors",
)
def parallel_sweep_grid(ctx: BenchContext) -> BenchResult:
    if ctx.quick:
        profile = ExperimentProfile(
            name="smoke", population=30, repeats=2, max_rounds=800
        )
        families: Sequence[str] = ("Rand", "BiCorr")
        oracles: Sequence[str] = ("random", "random-delay")
        worker_counts: Sequence[int] = (2,)
    else:
        profile = QUICK
        families = PAPER_FAMILIES
        oracles = tuple(oracle_names())
        worker_counts = (2, 4)
    repeats = ctx.opt("grid_repeats")
    if repeats is not None:
        profile = dataclasses.replace(profile, repeats=int(repeats))
    worker_counts = tuple(
        int(w) for w in ctx.opt("worker_counts", worker_counts)
    )
    serial, parallel, failures = run_scaling(
        profile, families, oracles, worker_counts
    )
    metrics = {
        "serial_seconds": serial["seconds"],
        "identical": float(not failures),
    }
    for run in parallel:
        if run["workers"] == 2:
            metrics["speedup_w2"] = run["speedup"]
    detail = {
        "benchmark": "parallel_sweep",
        "profile": profile.name,
        "population": profile.population,
        "repeats": profile.repeats,
        "max_rounds": profile.max_rounds,
        "families": list(families),
        "oracles": list(oracles),
        "cpu_bound_note": (
            "speedup is bounded by min(workers, cpu_count); on a "
            "single-CPU machine the parallel runs measure engine "
            "overhead, not speedup"
        ),
        "serial": serial,
        "parallel": parallel,
        "identical": not failures,
    }
    return BenchResult(metrics=metrics, detail=detail, failures=tuple(failures))
