"""Tests for the v2 observability layers (:mod:`repro.obs` v2).

Covers the flight-recorder ring, the O(dirty-set) health timeseries,
feed-domain delivery spans with exact staleness attribution, the
round-domain staleness attributor (the acceptance identity, pinned at
N=2000 across both algorithms and all four oracles), the parallel
health merge — and the layer's central invariant: recording a run must
not change it.
"""

import pickle
import random

import pytest

from repro.feeds.dissemination import LagOverDissemination
from repro.feeds.source import FeedSource
from repro.obs import (
    FeedAttribution,
    HealthConfig,
    HealthRecorder,
    RingBuffer,
    Span,
    SpanRecorder,
    StalenessAttributor,
    merge_spans,
    sample_from_dict,
    span_from_dict,
)
from repro.obs.trace import (
    STALL_BUCKETS,
    attribute_chain,
    critical_paths,
    describe_path,
    index_spans,
)
from repro.par import (
    SerialExecutor,
    ProcessPoolSweepExecutor,
    SweepItem,
    merge_outcome_health,
    repeat_items,
)
from repro.core.greedy import GreedyConstruction
from repro.sim.churn import ChurnConfig
from repro.sim.runner import Simulation, SimulationConfig, register_algorithm
from repro.workloads import make


class AbortingConstruction(GreedyConstruction):
    """Raises immediately — a sweep item that can never produce health."""

    name = "obs-aborting"

    def step(self, node):
        raise RuntimeError("injected failure before any sample")


register_algorithm(AbortingConstruction)

ALGORITHMS = ["greedy", "hybrid"]
ORACLES = [
    "random",
    "random-capacity",
    "random-delay",
    "random-delay-capacity",
]


def churned_config(**overrides):
    defaults = dict(
        algorithm="hybrid",
        oracle="random-delay",
        seed=7,
        churn=ChurnConfig(),
        max_rounds=30,
        stop_at_convergence=False,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestRingBuffer:
    def test_append_below_capacity_keeps_everything(self):
        ring = RingBuffer(4)
        assert [ring.append(i) for i in range(3)] == [None, None, None]
        assert ring.to_list() == [0, 1, 2]
        assert len(ring) == 3
        assert ring.dropped == 0

    def test_eviction_returns_the_displaced_record_oldest_first(self):
        ring = RingBuffer(3)
        for i in range(3):
            ring.append(i)
        assert ring.append(3) == 0
        assert ring.append(4) == 1
        assert ring.to_list() == [2, 3, 4]
        assert ring.dropped == 2

    def test_iteration_is_oldest_first_across_wraparound(self):
        ring = RingBuffer(3)
        for i in range(7):
            ring.append(i)
        assert list(ring) == [4, 5, 6]

    def test_latest_returns_the_newest_window(self):
        ring = RingBuffer(5)
        for i in range(9):
            ring.append(i)
        assert ring.latest(2) == [7, 8]
        assert ring.latest(100) == [4, 5, 6, 7, 8]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestHealthConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(every=0)
        with pytest.raises(ValueError):
            HealthConfig(capacity=0)

    def test_picklable_inside_simulation_config(self):
        config = churned_config(health=HealthConfig(every=2, capacity=64))
        clone = pickle.loads(pickle.dumps(config))
        assert clone.health == config.health


class TestHealthRecorder:
    def run_with_health(self, **overrides):
        config = churned_config(health=HealthConfig(), **overrides)
        simulation = Simulation(make("Rand", size=120, seed=7), config)
        result = simulation.run()
        return simulation, result

    def test_incremental_aggregates_match_full_rescan(self):
        simulation, result = self.run_with_health()
        simulation.health.verify()
        samples = simulation.health.samples.to_list()
        assert len(samples) == result.rounds_run

    def test_samples_reflect_overlay_state(self):
        simulation, _ = self.run_with_health()
        last = simulation.health.samples.latest(1)[0]
        overlay = simulation.overlay
        online = [n for n in overlay.consumers if n.online]
        assert last.online == len(online)
        assert last.rooted == sum(
            1 for n in online if overlay.chain_index.entries[n.node_id].rooted
        )
        assert last.orphans == sum(
            1 for n in online if n.parent is None
        )

    def test_capture_is_dirty_set_sized_not_population_sized(self):
        simulation, result = self.run_with_health()
        population = len(simulation.overlay.consumers)
        dirties = [s.dirty for s in simulation.health.samples]
        # Steady-state rounds touch a small fraction of the overlay;
        # a full-rescan implementation would show dirty == population.
        assert max(dirties) < population
        assert sum(dirties) / len(dirties) < population / 2

    def test_every_thins_the_series(self):
        config = churned_config(health=HealthConfig(every=3))
        simulation = Simulation(make("Rand", size=80, seed=5), config)
        result = simulation.run()
        samples = simulation.health.samples.to_list()
        assert len(samples) == result.rounds_run // 3
        assert all(s.round % 3 == 0 for s in samples)

    def test_ring_bounds_the_series(self):
        config = churned_config(health=HealthConfig(capacity=8))
        simulation = Simulation(make("Rand", size=80, seed=5), config)
        result = simulation.run()
        ring = simulation.health.samples
        assert len(ring) == 8
        assert ring.dropped == result.rounds_run - 8
        # The newest window survives, oldest-first.
        assert [s.round for s in ring] == list(
            range(result.rounds_run - 7, result.rounds_run + 1)
        )

    def test_sample_round_trips_through_dict(self):
        simulation, _ = self.run_with_health()
        sample = simulation.health.samples.latest(1)[0]
        payload = sample.to_dict()
        assert payload["kind"] == "health-sample"
        assert sample_from_dict(payload) == sample

    def test_recorders_never_change_the_run(self):
        plain = Simulation(make("Rand", size=120, seed=7), churned_config())
        instrumented, _ = self.run_with_health(attribution=True)
        assert plain.run() == instrumented.result()


class TestFeedSpans:
    def traced_delivery(self, size=60, seed=3, duration=40.0):
        config = SimulationConfig(algorithm="hybrid", seed=seed)
        simulation = Simulation(make("Rand", size=size, seed=seed), config)
        simulation.run()
        tracer = SpanRecorder()
        engine = LagOverDissemination(
            simulation.overlay, FeedSource(), random.Random(seed), tracer=tracer
        )
        report = engine.run(duration)
        return engine, tracer, report

    def test_attribution_is_exact_for_every_delivery(self):
        engine, tracer, _ = self.traced_delivery()
        checked = 0
        for node_id, consumer in engine.consumers.items():
            for seq, arrival in consumer.arrivals.items():
                attribution = tracer.attribute(node_id, seq)
                if attribution is None:
                    continue  # never delivered there / evicted
                assert attribution.total == pytest.approx(
                    arrival.staleness, abs=1e-9
                )
                assert attribution.pull_wait >= 0
                assert attribution.transit >= 0
                assert attribution.hold >= 0
                checked += 1
        assert checked > 100  # the identity was exercised at scale

    def test_deeper_consumers_take_more_hops(self):
        engine, tracer, _ = self.traced_delivery()
        overlay = engine.overlay
        for node in overlay.consumers:
            entry = overlay.chain_index.entries[node.node_id]
            if not entry.rooted:
                continue
            attribution = tracer.attribute(node.node_id, 0)
            if attribution is None:
                continue
            assert attribution.hops == entry.delay - 1

    def test_tracing_never_changes_the_delivery(self):
        def run(tracer):
            config = SimulationConfig(algorithm="hybrid", seed=3)
            simulation = Simulation(make("Rand", size=40, seed=3), config)
            simulation.run()
            engine = LagOverDissemination(
                simulation.overlay,
                FeedSource(),
                random.Random(3),
                tracer=tracer,
            )
            return engine.run(30.0)

        assert run(None) == run(SpanRecorder())

    def test_critical_paths_rank_worst_first_and_describe(self):
        _, tracer, _ = self.traced_delivery()
        ranked = tracer.critical_paths(top=3)
        assert ranked
        costs = [cost for cost, _ in ranked]
        assert costs == sorted(costs, reverse=True)
        for cost, chain in ranked:
            assert chain[0].hop == "pull"
            assert cost == pytest.approx(
                chain[-1].recv_at - chain[0].sent_at
            )
            line = describe_path(chain)
            assert line.startswith("0 ")
            assert "pull" in line

    def test_span_round_trips_and_merge_keeps_earliest(self):
        span = Span(trace_id=4, node=9, parent=2, hop="push", sent_at=1.5, recv_at=2.25)
        assert span_from_dict(span.to_dict()) == span
        later = Span(trace_id=4, node=9, parent=3, hop="push", sent_at=2.0, recv_at=3.0)
        other = Span(trace_id=4, node=2, parent=0, hop="pull", sent_at=0.0, recv_at=1.0)
        merged = merge_spans([[later, other], [span]])
        assert merged == [other, span]
        attribution = attribute_chain(
            [other, span]
        )
        assert attribution.total == pytest.approx(2.25)

    def test_eviction_keeps_key_index_consistent(self):
        tracer = SpanRecorder(capacity=4)

        class Item:
            def __init__(self, seq):
                self.seq = seq
                self.published_at = float(seq)

        for seq in range(10):
            tracer.record_pull(1, [Item(seq)], now=seq + 0.5)
        assert len(tracer) == 4
        assert tracer.attribute(1, 0) is None  # evicted, index followed
        attribution = tracer.attribute(1, 9)
        assert attribution.pull_wait == pytest.approx(0.5)
        keys = {(s.trace_id, s.node) for s in tracer.spans}
        assert set(tracer._by_key) == keys


class TestStalenessAttributor:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("oracle", ORACLES)
    def test_acceptance_identity_at_n2000(self, algorithm, oracle):
        """The ISSUE acceptance bar: on a seeded N=2000 churned run the
        per-consumer components sum exactly to the measured staleness,
        for greedy/hybrid across all four oracles."""
        config = churned_config(
            algorithm=algorithm,
            oracle=oracle,
            seed=11,
            max_rounds=10,
            attribution=True,
        )
        simulation = Simulation(make("Rand", size=2000, seed=11), config)
        simulation.run()
        attributor = simulation.attributor
        attributor.verify()  # raises on the first identity violation
        rows = attributor.records()
        assert len(rows) > 1000  # tracked essentially the whole overlay
        for row in rows:
            components = row["depth"] + sum(
                row[bucket] for bucket in STALL_BUCKETS
            )
            assert components == row["staleness"]
        totals = attributor.totals()
        assert totals["staleness"] == totals["depth"] + sum(
            totals[bucket] for bucket in STALL_BUCKETS
        )

    def test_rooted_consumer_age_is_its_delay(self):
        config = churned_config(attribution=True, seed=3)
        simulation = Simulation(make("Rand", size=100, seed=3), config)
        simulation.run()
        entries = simulation.overlay.chain_index.entries
        for node in simulation.overlay.online_consumers:
            entry = entries[node.node_id]
            if not entry.rooted:
                continue
            row = simulation.attributor.breakdown(node.node_id)
            assert row["staleness"] == entry.delay
            assert row["depth"] == entry.delay
            assert all(row[bucket] == 0 for bucket in STALL_BUCKETS)

    def test_outage_rounds_are_charged_to_outage_stall(self):
        from repro.faults import parse_fault_plan

        config = churned_config(
            attribution=True,
            seed=9,
            max_rounds=30,
            faults=parse_fault_plan("source-outage@5:25"),
        )
        simulation = Simulation(make("Rand", size=60, seed=9), config)
        simulation.run()
        totals = simulation.attributor.totals()
        assert totals["outage_stall"] > 0
        simulation.attributor.verify()

    def test_attribution_never_changes_the_run(self):
        plain = Simulation(make("Rand", size=100, seed=13), churned_config(seed=13))
        traced = Simulation(
            make("Rand", size=100, seed=13),
            churned_config(seed=13, attribution=True),
        )
        assert plain.run() == traced.run()

    def test_records_sorted_worst_first(self):
        config = churned_config(attribution=True)
        simulation = Simulation(make("Rand", size=80, seed=7), config)
        simulation.run()
        rows = simulation.attributor.records()
        staleness = [row["staleness"] for row in rows]
        assert staleness == sorted(staleness, reverse=True)
        assert all(row["kind"] == "staleness" for row in rows)


class TestParallelHealthMerge:
    def items(self, repeats=3):
        return repeat_items(
            "Rand",
            SimulationConfig(
                churn=ChurnConfig(), max_rounds=12, stop_at_convergence=False
            ),
            40,
            repeats,
        )

    def test_health_collection_is_opt_in(self):
        outcomes = SerialExecutor().run(self.items())
        assert all(outcome.health is None for outcome in outcomes)

    def test_merged_ring_is_tagged_and_ordered(self):
        outcomes = SerialExecutor().run(self.items(), collect_health=True)
        ring = merge_outcome_health(outcomes)
        samples = ring.to_list()
        assert samples
        positions = [s["sweep_position"] for s in samples]
        assert positions == sorted(positions)
        for position, outcome in enumerate(outcomes):
            tagged = [s for s in samples if s["sweep_position"] == position]
            assert len(tagged) == len(outcome.health)
            assert all(s["seed"] == outcome.item.seed for s in tagged)

    def test_serial_and_pool_merge_identically(self):
        items = self.items()
        serial = SerialExecutor().run(items, collect_health=True)
        pooled = ProcessPoolSweepExecutor(2).run(items, collect_health=True)
        assert (
            merge_outcome_health(serial).to_list()
            == merge_outcome_health(pooled).to_list()
        )

    def test_capacity_bounds_the_merge(self):
        outcomes = SerialExecutor().run(self.items(), collect_health=True)
        total = sum(len(outcome.health) for outcome in outcomes)
        ring = merge_outcome_health(outcomes, capacity=5)
        assert len(ring) == 5
        assert ring.dropped == total - 5

    def test_failed_outcomes_are_skipped(self):
        config = SimulationConfig(algorithm="obs-aborting", max_rounds=5)
        items = [SweepItem(family="Rand", config=config, population=12, seed=0)]
        outcomes = SerialExecutor().run(items, collect_health=True)
        assert not outcomes[0].ok
        assert merge_outcome_health(outcomes).to_list() == []
