"""Plain-text tables for experiment output.

Every experiment and benchmark prints its rows through these helpers so
EXPERIMENTS.md, the bench logs, and interactive runs all show the same
format.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value: object) -> str:
    """Human-friendly cell rendering (floats to 3 significant digits)."""
    if isinstance(value, float):
        return f"{value:.3g}"
    if value is None:
        return "-"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated table with a rule under headers."""
    rendered: List[List[str]] = [[format_cell(h) for h in headers]]
    for row in rows:
        rendered.append([format_cell(cell) for cell in row])
    widths = [
        max(len(line[column]) for line in rendered)
        for column in range(len(rendered[0]))
    ]
    lines = []
    for index, line in enumerate(rendered):
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def banner(title: str) -> str:
    """Section banner used by the experiment CLIs."""
    rule = "=" * len(title)
    return f"{rule}\n{title}\n{rule}"
