"""Common machinery of the two LagOver construction protocols.

Both algorithms of §3 share an identical outer loop, executed independently
by every node that currently has no parent (Alg. 2, but the Greedy
algorithm's loop is the same):

* on *Timeout* (too many rounds spent parentless), contact the source
  directly — attach if it has free capacity, otherwise displace a direct
  child with a laxer latency constraint;
* otherwise, interact with a partner: the node referred during the last
  interaction if any, else a node sampled from the Oracle (§2.1.4);
* if the Oracle finds no suitable partner, wait and try again next round.

What differs is the *bilateral decision rule* applied during an
interaction, supplied by subclasses via :meth:`ConstructionAlgorithm._interact`,
and the maintenance rule (:mod:`repro.core.maintenance`).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.core.errors import ConfigurationError
from repro.core.interactions import (
    EdgePolicy,
    try_attach,
    try_displace_at_source,
)
from repro.core.node import Node
from repro.core.tree import Overlay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.oracles.base import Oracle


@dataclasses.dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the construction/maintenance protocols (§2.1.1, §3).

    Attributes
    ----------
    timeout:
        Rounds a node remains parentless before contacting the source
        directly (the ``Timeout`` of Alg. 2).
    maintenance_timeout:
        Rounds a node whose latency constraint is violated while rooted at
        the source waits before discarding its parent (Hybrid maintenance
        damping, §3.4; ignored by the Greedy rule).  The paper prescribes
        *a* timeout but not its value; 1 round already suppresses
        knee-jerk reactions to transient upstream reconfigurations while
        staying responsive under churn (the timeout ablation bench sweeps
        this).
    pull_only_source:
        Whether the source supports only pulls (§2.1.2, the RSS case — the
        default) or can push, which changes the Hybrid decision at a
        source child (Alg. 2 steps 21+).
    """

    timeout: int = 4
    maintenance_timeout: int = 1
    pull_only_source: bool = True

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise ConfigurationError("timeout must be >= 1 round")
        if self.maintenance_timeout < 0:
            raise ConfigurationError("maintenance_timeout must be >= 0")


class ConstructionAlgorithm(abc.ABC):
    """One construction protocol instance bound to an overlay and an oracle.

    Subclasses implement the interaction decision rule and the maintenance
    rule; the shared timeout/referral/oracle loop lives here.
    """

    #: Short identifier used in experiment configs and reports.
    name: str = "abstract"

    #: Edge policy enforced on every consumer-to-consumer edge this
    #: algorithm creates.
    edge_ok: EdgePolicy

    def __init__(
        self,
        overlay: Overlay,
        oracle: "Oracle",
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.overlay = overlay
        self.oracle = oracle
        self.config = config if config is not None else ProtocolConfig()

    @property
    def probe(self):
        """The run's observability probe (shared through the overlay)."""
        return self.overlay.probe

    # ------------------------------------------------------------------
    # outer loop, one step of a parentless node
    # ------------------------------------------------------------------

    def step(self, node: Node) -> None:
        """Run one construction round for a parentless node.

        Mirrors the ``while i <-/`` loop body of Alg. 2: timeout handling,
        then a single bilateral interaction with a referred or
        oracle-provided partner.
        """
        if node.is_source or node.parent is not None or not node.online:
            return
        node.rounds_without_parent += 1
        if node.rounds_without_parent > self.config.timeout:
            node.rounds_without_parent = 0
            self.probe.timeout(node.node_id)
            self.contact_source(node)
            return
        partner = self._next_partner(node)
        if partner is None:
            return  # oracle found no suitable partner; wait and try again
        if partner.is_source:
            node.rounds_without_parent = 0
            self.contact_source(node)
            return
        if self.overlay.fragment_root(partner) is node:
            return  # partner is in the node's own fragment (O(1) index read)
        self._interact(node, partner)

    def _next_partner(self, node: Node) -> Optional[Node]:
        """The partner for this round: last referral if usable, else oracle."""
        partner = node.referral
        node.referral = None
        if partner is not None and partner.online and partner is not node:
            return partner
        return self.oracle.sample(node)

    # ------------------------------------------------------------------
    # interaction at the source (shared by both algorithms)
    # ------------------------------------------------------------------

    def contact_source(self, node: Node) -> bool:
        """Timeout branch of Alg. 2 (steps 2-7), identical for Greedy (§3.4:
        "The interaction of a node at the server is the same as in the case
        of the greedy algorithm").

        Attach directly if the source has free capacity; otherwise displace
        the direct child with the laxest latency constraint that is laxer
        than the contacting node's (``c <- i <- 0``).
        """
        source = self.overlay.source
        if try_attach(self.overlay, node, source, self.edge_ok):
            return True
        candidates = [c for c in source.children if c.latency > node.latency]
        if not candidates:
            return False
        victim = max(candidates, key=lambda c: (c.latency, -c.fanout))
        return try_displace_at_source(
            self.overlay,
            node,
            victim,
            self.edge_ok,
            allow_shed=self._shed_allowed(),
        )

    def _shed_allowed(self) -> bool:
        """Whether moves may discard a child of the incoming node to make
        room (Hybrid: yes; Greedy: no)."""
        return False

    # ------------------------------------------------------------------
    # to be provided by concrete algorithms
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _interact(self, node: Node, partner: Node) -> None:
        """Bilateral decision rule for ``node <-> partner`` (both consumers,
        different fragments, ``node`` parentless)."""

    @abc.abstractmethod
    def maintain(self, node: Node) -> bool:
        """Run the maintenance rule at a *parented* node; returns ``True``
        if the node discarded its parent this round."""
