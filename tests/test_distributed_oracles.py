"""Tests for the distributed oracle realizations (§2.1.4's sketch)."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.tree import Overlay
from repro.oracles.distributed import (
    DhtDirectoryOracle,
    RandomWalkOracle,
    realize_oracle,
)
from repro.sim.churn import ChurnConfig
from repro.sim.runner import SimulationConfig, run_simulation
from repro.workloads import make as make_workload

from tests.conftest import spec


def populated_overlay(n=20):
    overlay = Overlay(source_fanout=3)
    for i in range(n):
        overlay.add_consumer(spec(1 + i % 5 + 1, 2), name=f"n{i}")
    return overlay


class TestRandomWalkOracle:
    def test_samples_live_consumers(self):
        overlay = populated_overlay()
        oracle = RandomWalkOracle(overlay, random.Random(1))
        enquirer = overlay.node(1)
        seen = set()
        for now in range(1, 60):
            oracle.on_round(now)
            node = oracle.sample(enquirer)
            if node is not None:
                assert node.online and node is not enquirer
                seen.add(node.node_id)
        assert len(seen) > 5  # walks reach a spread of peers

    def test_tracks_churn(self):
        overlay = populated_overlay(10)
        oracle = RandomWalkOracle(overlay, random.Random(2))
        victim = overlay.node(3)
        overlay.go_offline(victim)
        oracle.on_round(1)
        enquirer = overlay.node(1)
        for _ in range(100):
            node = oracle.sample(enquirer)
            assert node is not victim
        overlay.go_online(victim)
        oracle.on_round(2)
        assert victim.node_id in oracle.gossip.members()


class TestDhtDirectoryOracle:
    def test_delay_filter_applies_to_registered_state(self):
        overlay = populated_overlay(6)
        oracle = DhtDirectoryOracle(overlay, random.Random(1), filter_mode="delay")
        oracle.on_round(1)
        enquirer = overlay.add_consumer(spec(2, 1), name="enq")
        for _ in range(30):
            node = oracle.sample(enquirer)
            if node is not None:
                # Registered delay was the potential delay 1 (< 2).
                assert overlay.delay_at(node) <= 2

    def test_staleness_window(self):
        """A node whose true state changed is still served with its old
        record until it re-registers."""
        overlay = Overlay(source_fanout=2)
        a = overlay.add_consumer(spec(1, 1), name="a")
        b = overlay.add_consumer(spec(9, 1), name="b")
        oracle = DhtDirectoryOracle(
            overlay, random.Random(1), filter_mode="capacity", refresh_interval=10
        )
        oracle.on_round(1)  # both register with free fanout
        overlay.attach(a, overlay.source)
        overlay.attach(b, a)  # a's fanout now saturated
        enquirer = overlay.add_consumer(spec(9, 0), name="e")
        oracle.on_round(2)  # e registers; a/b records still stale
        picks = {oracle.sample(enquirer).name for _ in range(40)}
        assert "a" in picks  # stale record says a still has capacity

    def test_offline_candidate_counts_as_stale_miss(self):
        overlay = populated_overlay(4)
        oracle = DhtDirectoryOracle(overlay, random.Random(1), filter_mode="random")
        oracle.on_round(1)
        victim = overlay.node(2)
        overlay.go_offline(victim)
        enquirer = overlay.node(1)
        for _ in range(60):
            node = oracle.sample(enquirer)
            assert node is not victim
        # At least one sample should have hit the stale record.
        assert oracle.stale_hits > 0

    def test_invalid_filter_rejected(self):
        overlay = populated_overlay(3)
        with pytest.raises(ConfigurationError):
            DhtDirectoryOracle(overlay, random.Random(1), filter_mode="psychic")


class TestRealizeOracle:
    def test_realize_all_modes(self):
        overlay = populated_overlay(5)
        rng = random.Random(1)
        assert realize_oracle("omniscient", "random-delay", overlay, rng)
        assert realize_oracle("dht", "random-delay", overlay, rng)
        assert realize_oracle("random-walk", "random", overlay, rng)

    def test_random_walk_only_realizes_random(self):
        overlay = populated_overlay(5)
        with pytest.raises(ConfigurationError):
            realize_oracle("random-walk", "random-delay", overlay, random.Random(1))

    def test_unknown_realization_rejected(self):
        overlay = populated_overlay(5)
        with pytest.raises(ConfigurationError):
            realize_oracle("telepathy", "random", overlay, random.Random(1))


class TestEndToEnd:
    @pytest.mark.parametrize(
        "realization,oracle",
        [("dht", "random-delay"), ("random-walk", "random")],
    )
    def test_construction_converges_with_distributed_oracles(
        self, realization, oracle
    ):
        workload = make_workload("Rand", size=50, seed=2)
        result = run_simulation(
            workload,
            SimulationConfig(
                algorithm="hybrid",
                oracle=oracle,
                oracle_realization=realization,
                seed=2,
                max_rounds=4000,
            ),
        )
        assert result.converged

    def test_dht_oracle_under_churn(self):
        workload = make_workload("Rand", size=40, seed=3)
        result = run_simulation(
            workload,
            SimulationConfig(
                algorithm="greedy",
                oracle="random-delay",
                oracle_realization="dht",
                seed=3,
                max_rounds=400,
                churn=ChurnConfig(0.02, 0.2),
                stop_at_convergence=False,
            ),
        )
        assert result.rounds_run == 400  # no crashes under churn
