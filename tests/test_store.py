"""The columnar node store: dense ids, views, pickling, verification.

Four layers:

1. Allocator unit tests — dense id assignment, lowest-freed-id-first
   reuse, and the release guards (only an offline, fully unlinked
   consumer may give its id back).
2. A hypothesis property test over randomized churn/removal/rejoin
   sequences: freed ids are reused, a rejoin burst never aliases a live
   consumer, and the store's column/view cross-check stays clean after
   every step.
3. View semantics — the ``_Children`` write-through proxy keeps the
   child-count column exact, and node identity (not equality) governs
   membership.
4. Pickle round-trips — the columnar overlay is fork-safe for
   :mod:`repro.par`: a clone is structurally identical and fully
   detached from the original's columns.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import NodeSpec
from repro.core.errors import OfflineNodeError, TopologyError, UnknownNodeError
from repro.core.store import NO_PARENT, ColumnarState
from repro.core.tree import Overlay
from repro.sim.churn import ChurnConfig
from repro.sim.runner import Simulation, SimulationConfig
from repro.workloads.random_workload import rand_workload


def columnar_overlay(source_fanout: int = 3) -> Overlay:
    overlay = Overlay(source_fanout=source_fanout, backend="columnar")
    assert overlay.store is not None
    return overlay


SPEC = NodeSpec(latency=5, fanout=2)


class TestAllocator:
    def test_ids_are_dense_from_zero(self):
        overlay = columnar_overlay()
        assert overlay.source.node_id == 0
        ids = [overlay.add_consumer(SPEC).node_id for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert len(overlay.store.latency) == 6

    def test_lowest_freed_id_is_reused_first(self):
        overlay = columnar_overlay()
        nodes = [overlay.add_consumer(SPEC) for _ in range(5)]
        for node in (nodes[3], nodes[1]):
            overlay.go_offline(node)
            overlay.remove_consumer(node)
        assert overlay.add_consumer(SPEC).node_id == nodes[1].node_id
        assert overlay.add_consumer(SPEC).node_id == nodes[3].node_id
        # The table never grew: freed slots were recycled in place.
        assert len(overlay.store.latency) == 6

    def test_release_guards(self):
        overlay = columnar_overlay()
        store = overlay.store
        node = overlay.add_consumer(SPEC)
        with pytest.raises(TopologyError):
            store.release(node.node_id)  # still online
        # Force an offline-but-linked column state (unreachable through
        # the Overlay API, which always disconnects before removal).
        linked = overlay.add_consumer(SPEC)
        store.online[linked.node_id] = 0
        store.parent[linked.node_id] = 0
        with pytest.raises(TopologyError):
            store.release(linked.node_id)
        store.parent[linked.node_id] = NO_PARENT
        store.n_children[linked.node_id] = 1
        with pytest.raises(TopologyError):
            store.release(linked.node_id)

    def test_remove_consumer_guards(self):
        overlay = columnar_overlay()
        node = overlay.add_consumer(SPEC)
        with pytest.raises(OfflineNodeError):
            overlay.remove_consumer(node)  # still online
        with pytest.raises(TopologyError):
            overlay.remove_consumer(overlay.source)
        foreign = Overlay(source_fanout=1).add_consumer(SPEC)
        with pytest.raises(UnknownNodeError):
            overlay.remove_consumer(foreign)
        overlay.go_offline(node)
        overlay.remove_consumer(node)
        with pytest.raises(TopologyError):
            overlay.store.release(node.node_id)  # already free
        with pytest.raises(UnknownNodeError):
            overlay.remove_consumer(node)  # no longer a member

    def test_double_remove_id_not_aliased_by_rejoin(self):
        overlay = columnar_overlay()
        victim = overlay.add_consumer(SPEC)
        keeper = overlay.add_consumer(SPEC)
        overlay.go_offline(victim)
        overlay.remove_consumer(victim)
        replacement = overlay.add_consumer(SPEC)
        assert replacement.node_id == victim.node_id
        assert replacement is not victim
        # The keeper kept its identity and id through the recycle.
        assert overlay.node(keeper.node_id) is keeper
        overlay.check_integrity()


class TestAllocatorProperty:
    """Randomized churn/remove/rejoin sequences never alias live ids."""

    @given(
        seed=st.integers(0, 10_000),
        steps=st.integers(10, 60),
    )
    @settings(max_examples=60, deadline=None)
    def test_freed_ids_reused_and_never_alias_live(self, seed, steps):
        rng = random.Random(seed)
        overlay = columnar_overlay(source_fanout=rng.randint(1, 4))
        removed_ids = []
        for _ in range(steps):
            op = rng.choice(("add", "add", "churn", "remove", "rejoin-burst"))
            consumers = overlay.consumers
            if op == "add" or not consumers:
                overlay.add_consumer(
                    NodeSpec(
                        latency=rng.randint(1, 10), fanout=rng.randint(1, 4)
                    )
                )
            elif op == "churn":
                node = rng.choice(consumers)
                if node.online:
                    overlay.go_offline(node)
                else:
                    overlay.go_online(node)
            elif op == "remove":
                node = rng.choice(consumers)
                if node.online:
                    overlay.go_offline(node)  # disconnects fully
                removed_ids.append(node.node_id)
                overlay.remove_consumer(node)
            else:  # rejoin-burst: a batch of joins right after removals
                before_free = sorted(overlay.store.free)
                joined = [
                    overlay.add_consumer(
                        NodeSpec(latency=rng.randint(1, 10), fanout=1)
                    )
                    for _ in range(rng.randint(1, 4))
                ]
                # Freed ids are reused, lowest first, before any growth.
                reused = [n.node_id for n in joined[: len(before_free)]]
                assert reused == before_free[: len(reused)]
            # No alias: every live consumer resolves to exactly itself.
            live = overlay.consumers
            assert len({n.node_id for n in live}) == len(live)
            for node in live:
                assert overlay.node(node.node_id) is node
            # Ids on the free list belong to no live view.
            for free_id in overlay.store.free:
                assert overlay.store.nodes[free_id] is None
            overlay.check_integrity()


class TestChildrenProxy:
    def test_child_count_column_tracks_links(self):
        overlay = columnar_overlay()
        store = overlay.store
        parent = overlay.add_consumer(NodeSpec(latency=5, fanout=3))
        overlay.attach(parent, overlay.source)
        kids = [overlay.add_consumer(SPEC) for _ in range(3)]
        for kid in kids:
            overlay.attach(kid, parent)
        assert store.n_children[parent.node_id] == 3
        overlay.detach(kids[1])
        assert store.n_children[parent.node_id] == 2
        assert kids[1] not in parent.children
        assert kids[0] in parent.children

    def test_membership_is_identity_based(self):
        overlay = columnar_overlay()
        parent = overlay.add_consumer(NodeSpec(latency=5, fanout=3))
        overlay.attach(parent, overlay.source)
        kid = overlay.add_consumer(SPEC)
        overlay.attach(kid, parent)
        # A same-spec node is not "in" the children: no __eq__ aliasing.
        stranger = overlay.add_consumer(SPEC)
        assert kid in parent.children
        assert stranger not in parent.children


class TestColumnVerification:
    def test_verify_detects_corrupted_parent_column(self):
        overlay = columnar_overlay()
        node = overlay.add_consumer(SPEC)
        overlay.attach(node, overlay.source)
        overlay.store.parent[node.node_id] = NO_PARENT  # corrupt
        with pytest.raises(TopologyError):
            overlay.check_integrity()

    def test_verify_detects_corrupted_child_count_column(self):
        overlay = columnar_overlay()
        node = overlay.add_consumer(SPEC)
        overlay.attach(node, overlay.source)
        overlay.store.n_children[node.node_id] = 5  # corrupt
        with pytest.raises(TopologyError):
            overlay.check_integrity()

    def test_verify_detects_corrupted_online_column(self):
        overlay = columnar_overlay()
        node = overlay.add_consumer(SPEC)
        overlay.store.online[node.node_id] = 0  # corrupt
        with pytest.raises(TopologyError):
            overlay.check_integrity()

    def test_standalone_state_rejects_bad_release(self):
        state = ColumnarState()
        node = state.allocate(SPEC)
        with pytest.raises(TopologyError):
            state.release(node.node_id)  # online


class TestPickleRoundTrip:
    def _built_overlay(self) -> Overlay:
        workload, _ = rand_workload(size=40, seed=11, source_fanout=3)
        config = SimulationConfig(
            algorithm="hybrid",
            oracle="random-delay",
            seed=4,
            max_rounds=40,
            churn=ChurnConfig(),
            stop_at_convergence=False,
        )
        simulation = Simulation(workload, config)
        simulation.run()
        overlay = simulation.overlay
        assert overlay.store is not None  # columnar is the default
        return overlay

    def test_clone_is_structurally_identical(self):
        overlay = self._built_overlay()
        clone = pickle.loads(pickle.dumps(overlay))
        assert clone.snapshot() == overlay.snapshot()
        assert bytes(clone.store.online) == bytes(overlay.store.online)
        assert list(clone.store.parent) == list(overlay.store.parent)
        assert clone.store.free == overlay.store.free
        clone.check_integrity()

    def test_clone_is_detached_from_original_columns(self):
        overlay = self._built_overlay()
        clone = pickle.loads(pickle.dumps(overlay))
        victim = next(n for n in clone.consumers if n.parent is not None)
        clone.detach(victim)
        assert overlay.snapshot() != clone.snapshot()
        overlay.check_integrity()
        clone.check_integrity()

    def test_views_rebind_to_cloned_store(self):
        overlay = self._built_overlay()
        clone = pickle.loads(pickle.dumps(overlay))
        for node in clone:
            assert node._store is clone.store
            assert clone.store.nodes[node.node_id] is node
