"""Edge-case tests for ``repro bench compare`` (:mod:`repro.bench.compare`).

The ISSUE's required cases, each pinned here: a metric missing from the
baseline, an improvement (never a failure), a regression landing
*exactly* at the threshold (strict ``>`` — still noise), an empty
history file, and mismatched environment fingerprints (warning, not
failure, for timing metrics; deterministic metrics still gate).
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchmarkRegistry,
    Metric,
    compare,
    compare_files,
    fingerprint,
)
from repro.bench.compare import load_side, resolve_spec


def spec_registry() -> BenchmarkRegistry:
    """A registry whose specs the comparator can fall back to."""
    registry = BenchmarkRegistry()

    @registry.register(
        "suite.alpha",
        metrics={
            "throughput": Metric(
                unit="ops/s", higher_is_better=True, tolerance=0.2
            ),
            "availability": Metric(
                higher_is_better=True, tolerance=0.0, deterministic=True
            ),
            "seconds": Metric(
                unit="s", higher_is_better=False, tolerance=0.5
            ),
        },
    )
    def alpha(ctx):
        return {}

    return registry


def record(
    name: str,
    metrics: dict,
    env: dict | None = None,
    quick: bool = False,
    failures: tuple = (),
) -> dict:
    """A minimal compact record the comparator accepts."""
    return {
        "name": name,
        "quick": quick,
        "metrics": dict(metrics),
        "failures": list(failures),
        "env": env if env is not None else fingerprint(),
    }


class TestCompareRules:
    def test_identical_sides_all_ok_exit_zero(self):
        side = {"suite.alpha": record("suite.alpha", {"throughput": 100.0})}
        report = compare(side, side, registry=spec_registry())
        assert report.ok and report.exit_code == 0
        assert [d.status for d in report.deltas] == ["ok"]

    def test_metric_missing_from_baseline_warns_not_fails(self):
        baseline = {"suite.alpha": record("suite.alpha", {"throughput": 100.0})}
        current = {
            "suite.alpha": record(
                "suite.alpha", {"throughput": 100.0, "new_metric": 7.0}
            )
        }
        report = compare(baseline, current, registry=spec_registry())
        assert report.ok
        assert any(
            "new_metric" in w and "no baseline" in w for w in report.warnings
        )
        # And the mirror image: a retired metric warns too.
        report = compare(current, baseline, registry=spec_registry())
        assert report.ok
        assert any(
            "new_metric" in w and "missing from the current" in w
            for w in report.warnings
        )

    def test_improvement_never_fails_however_large(self):
        baseline = {"suite.alpha": record("suite.alpha", {"throughput": 100.0})}
        current = {"suite.alpha": record("suite.alpha", {"throughput": 900.0})}
        report = compare(baseline, current, registry=spec_registry())
        assert report.ok
        assert report.deltas[0].status == "improved"
        # Lower-is-better improvement counts as improvement too.
        baseline = {"suite.alpha": record("suite.alpha", {"seconds": 10.0})}
        current = {"suite.alpha": record("suite.alpha", {"seconds": 1.0})}
        report = compare(baseline, current, registry=spec_registry())
        assert report.ok and report.deltas[0].status == "improved"

    def test_regression_exactly_at_threshold_is_noise(self):
        # throughput tolerance is 0.2: 100 -> 80 is worse by exactly 20%.
        baseline = {"suite.alpha": record("suite.alpha", {"throughput": 100.0})}
        current = {"suite.alpha": record("suite.alpha", {"throughput": 80.0})}
        report = compare(baseline, current, registry=spec_registry())
        assert report.ok
        assert report.deltas[0].status == "ok"
        assert report.deltas[0].worse_by == pytest.approx(0.2)
        # One hair beyond the threshold regresses.
        current = {"suite.alpha": record("suite.alpha", {"throughput": 79.9})}
        report = compare(baseline, current, registry=spec_registry())
        assert not report.ok and report.exit_code == 1
        assert report.regressions[0].metric == "throughput"

    def test_zero_tolerance_deterministic_metric_gates_exactly(self):
        baseline = {
            "suite.alpha": record("suite.alpha", {"availability": 0.95})
        }
        same = {"suite.alpha": record("suite.alpha", {"availability": 0.95})}
        assert compare(baseline, same, registry=spec_registry()).ok
        worse = {"suite.alpha": record("suite.alpha", {"availability": 0.94})}
        report = compare(baseline, worse, registry=spec_registry())
        assert not report.ok

    def test_env_mismatch_warns_and_downgrades_timing_metrics(self):
        env_a = fingerprint()
        env_b = dict(env_a, machine="other-arch", cpu_count=128)
        baseline = {
            "suite.alpha": record(
                "suite.alpha",
                {"throughput": 100.0, "availability": 0.95},
                env=env_a,
            )
        }
        current = {
            "suite.alpha": record(
                "suite.alpha",
                {"throughput": 10.0, "availability": 0.95},
                env=env_b,
            )
        }
        report = compare(baseline, current, registry=spec_registry())
        # A 10x timing collapse on a different machine: warning, not failure.
        assert report.ok
        assert any("fingerprints differ" in w for w in report.warnings)
        by_metric = {d.metric: d for d in report.deltas}
        assert by_metric["throughput"].status == "informational"
        assert by_metric["throughput"].note == "environment mismatch"
        # But a deterministic metric still gates across machines.
        current["suite.alpha"]["metrics"]["availability"] = 0.90
        report = compare(baseline, current, registry=spec_registry())
        assert not report.ok
        assert report.regressions[0].metric == "availability"

    def test_one_sided_benchmark_warns_not_fails(self):
        baseline = {"suite.alpha": record("suite.alpha", {"throughput": 1.0})}
        current = {"suite.beta": record("suite.beta", {"throughput": 1.0})}
        report = compare(baseline, current, registry=spec_registry())
        assert report.ok
        assert any("'suite.alpha'" in w for w in report.warnings)
        assert any("'suite.beta'" in w for w in report.warnings)

    def test_quick_vs_full_scale_mismatch_skipped(self):
        baseline = {
            "suite.alpha": record("suite.alpha", {"throughput": 100.0})
        }
        current = {
            "suite.alpha": record(
                "suite.alpha", {"throughput": 1.0}, quick=True
            )
        }
        report = compare(baseline, current, registry=spec_registry())
        assert report.ok and not report.deltas
        assert any("different scales" in w for w in report.warnings)

    def test_current_failures_warn(self):
        side = {"suite.alpha": record("suite.alpha", {"throughput": 1.0})}
        failing = {
            "suite.alpha": record(
                "suite.alpha", {"throughput": 1.0}, failures=("boom",)
            )
        }
        report = compare(side, failing, registry=spec_registry())
        assert any("hard failure" in w for w in report.warnings)

    def test_tolerance_override_applies_everywhere(self):
        baseline = {"suite.alpha": record("suite.alpha", {"throughput": 100.0})}
        current = {"suite.alpha": record("suite.alpha", {"throughput": 95.0})}
        report = compare(
            baseline, current, tolerance=0.01, registry=spec_registry()
        )
        assert not report.ok
        report = compare(
            baseline, current, tolerance=0.10, registry=spec_registry()
        )
        assert report.ok

    def test_zero_baseline_directions(self):
        registry = spec_registry()
        baseline = {"suite.alpha": record("suite.alpha", {"throughput": 0.0})}
        same = {"suite.alpha": record("suite.alpha", {"throughput": 0.0})}
        assert compare(baseline, same, registry=registry).deltas[0].worse_by == 0.0
        worse = {"suite.alpha": record("suite.alpha", {"throughput": -1.0})}
        report = compare(baseline, worse, registry=registry)
        assert not report.ok  # inf worsening


class TestCompareFiles:
    def test_empty_history_file_warns_exit_zero(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        current = tmp_path / "current.json"
        current.write_text(
            json.dumps(record("suite.alpha", {"throughput": 1.0}))
        )
        report = compare_files(
            str(empty), str(current), registry=spec_registry()
        )
        assert report.ok and report.exit_code == 0
        assert any("baseline is empty" in w for w in report.warnings)

    def test_history_jsonl_latest_line_wins(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        lines = [
            record("suite.alpha", {"throughput": 50.0}),
            record("suite.alpha", {"throughput": 100.0}),
        ]
        history.write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        current = tmp_path / "current.json"
        current.write_text(
            json.dumps(record("suite.alpha", {"throughput": 95.0}))
        )
        report = compare_files(
            str(history), str(current), registry=spec_registry()
        )
        # Against the latest line (100) a drop to 95 is within 20%.
        assert report.ok
        assert report.deltas[0].baseline == 100.0

    def test_legacy_benchmark_key_accepted(self, tmp_path):
        legacy = record("ignored", {"throughput": 1.0})
        del legacy["name"]
        legacy["benchmark"] = "suite.alpha"
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(legacy))
        by_name, _env = load_side(str(path))
        assert "suite.alpha" in by_name

    def test_unreadable_side_raises_value_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"no": "recognizable shape"}))
        with pytest.raises(ValueError, match="bad.json"):
            load_side(str(bad))


class TestResolveSpec:
    def test_embedded_spec_beats_registry(self):
        registry = spec_registry()
        current = {
            "metrics": {
                "throughput": {
                    "median": 1.0,
                    "higher_is_better": False,
                    "tolerance": 0.9,
                    "unit": "x",
                    "deterministic": True,
                }
            }
        }
        spec = resolve_spec("suite.alpha", "throughput", current, {}, registry)
        assert spec.tolerance == 0.9 and spec.higher_is_better is False

    def test_registry_fallback_for_compact_lines(self):
        registry = spec_registry()
        spec = resolve_spec("suite.alpha", "seconds", {}, {}, registry)
        assert spec.higher_is_better is False and spec.tolerance == 0.5

    def test_heuristic_for_unknown_everything(self):
        spec = resolve_spec("nope", "time_to_recover", {}, {}, None)
        assert spec.higher_is_better is False
        spec = resolve_spec("nope", "throughput", {}, {}, None)
        assert spec.higher_is_better is True
