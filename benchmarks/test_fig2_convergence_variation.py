"""Figure 2 — run-to-run variation of Greedy + Oracle Random-Delay.

Shape asserted: for a fixed workload draw and setting, construction
latency varies substantially across seeds (max/min spread well above 1),
which is what motivates the paper's repeat-5-take-median protocol.
"""

from repro.analysis.reporting import ascii_table
from repro.experiments import figure2

from benchmarks.conftest import BENCH, run_once

REPEATS = 12


def test_fig2_convergence_variation(benchmark):
    summaries = run_once(
        benchmark, figure2.run, profile=BENCH, repeats=REPEATS
    )
    print()
    print(ascii_table(figure2.HEADERS, figure2.rows(summaries)))

    for family, summary in summaries.items():
        # Every seed converged at bench scale...
        assert summary.n == REPEATS, f"{family}: non-converged runs"
        # ...and the latency is meaningfully seed-dependent.
        assert summary.maximum > summary.minimum, f"{family}: no variation"
    # The headline claim: at least one family shows a large spread.
    assert max(s.spread_ratio for s in summaries.values()) >= 2.0
