"""§1 motivation — the bandwidth-overload problem of direct polling.

Shapes asserted:

* the polling load on the source grows linearly with the population and,
  past the source capacity, rejection rates soar and satisfaction
  collapses;
* a LagOver's source load is capped at the source fanout regardless of
  population size (and its dissemination keeps every promise).
"""

from repro.analysis.reporting import ascii_table
from repro.experiments import baselines_experiment as bx

from benchmarks.conftest import run_once

POPULATIONS = (30, 120, 360)


def test_direct_polling_overload(benchmark):
    rows = run_once(benchmark, bx.polling_sweep, populations=POPULATIONS)
    print()
    print(ascii_table(bx.POLLING_HEADERS, rows))

    loads = [row[1] for row in rows]
    rejected = [row[2] for row in rows]
    satisfied = [row[3] for row in rows]
    # Load grows roughly linearly with the population.
    assert loads[1] > 2.5 * loads[0]
    assert loads[2] > 2.5 * loads[1]
    # Small population fine; large population overloaded and unsatisfied.
    assert rejected[0] < 0.05 and satisfied[0] > 0.95
    assert rejected[-1] > 0.5 and satisfied[-1] < 0.5
    # The LagOver column is constant — the source serves f_0 pullers only.
    assert len({row[4] for row in rows}) == 1


def test_lagover_source_load_is_constant(benchmark):
    """Build LagOvers at two population scales and measure actual pulls."""
    from repro.feeds.dissemination import LagOverDissemination
    from repro.feeds.source import FeedSource
    from repro.sim.runner import Simulation, SimulationConfig
    from repro.workloads import make as make_workload
    import random

    def measure(population):
        workload = make_workload("Rand", size=population, seed=1)
        simulation = Simulation(
            workload, SimulationConfig(algorithm="hybrid", seed=1)
        )
        simulation.run()
        assert simulation.overlay.is_converged()
        source = FeedSource()
        engine = LagOverDissemination(
            simulation.overlay, source, random.Random(1)
        )
        engine.run(40.0)
        return source.requests_total / 40.0, workload.source_fanout

    def run_both():
        return measure(40), measure(160)

    (small_rate, fanout_small), (large_rate, fanout_large) = run_once(
        benchmark, run_both
    )
    print(f"\npulls/unit at n=40: {small_rate:.2f}, at n=160: {large_rate:.2f}")
    # Rate is bounded by the source fanout (one pull per puller per unit).
    assert small_rate <= fanout_small + 0.5
    assert large_rate <= fanout_large + 0.5
    # And does not grow with the population.
    assert large_rate <= small_rate * 1.25
