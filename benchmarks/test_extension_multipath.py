"""§7 extension — multipath delivery (the P2P-video sketch).

Shape asserted: with k LagOvers carrying k stream descriptions, the
probability that a surviving consumer still receives (>= 1 intact chain)
rises with k at every failure level, and the mean number of surviving
descriptions scales with k.
"""

from repro.analysis.reporting import ascii_table
from repro.multipath import delivery_under_failures
from repro.workloads import make as make_workload

from benchmarks.conftest import run_once

FRACTIONS = [0.05, 0.15, 0.25]


def test_multipath_resilience(benchmark):
    workload = make_workload("Rand", size=60, seed=2)

    def run_all():
        return {
            k: delivery_under_failures(
                workload, paths=k, failure_fractions=FRACTIONS, seed=2, trials=8
            )
            for k in (1, 2, 3)
        }

    by_paths = run_once(benchmark, run_all)
    rows = []
    for k, result_rows in by_paths.items():
        for row in result_rows:
            rows.append(
                [
                    k,
                    row.failed_fraction,
                    f"{row.delivered_fraction:.3f}",
                    f"{row.mean_surviving_paths:.2f}",
                ]
            )
    print()
    print(
        ascii_table(
            ["paths", "failed frac", "delivered", "mean surviving paths"],
            rows,
        )
    )
    for index, fraction in enumerate(FRACTIONS):
        single = by_paths[1][index]
        triple = by_paths[3][index]
        assert triple.delivered_fraction >= single.delivered_fraction
        assert triple.mean_surviving_paths > single.mean_surviving_paths
    # The aggregate improvement must be substantial, not just monotone.
    gain = sum(r.delivered_fraction for r in by_paths[3]) - sum(
        r.delivered_fraction for r in by_paths[1]
    )
    assert gain > 0.2
