"""RSS-style feed substrate: pull-only source, dissemination, staleness."""

from repro.feeds.client import Arrival, FeedConsumer
from repro.feeds.dissemination import LagOverDissemination, disseminate
from repro.feeds.items import FeedItem
from repro.feeds.live import (
    LiveDeliveryReport,
    LiveFeedSystem,
    live_delivery,
)
from repro.feeds.rss import parse_rss, render_rss
from repro.feeds.source import FeedSource, bursty, periodic, poisson
from repro.feeds.staleness import (
    ConsumerStaleness,
    StalenessReport,
    build_report,
    percentile,
    staleness_percentiles,
)

__all__ = [
    "Arrival",
    "ConsumerStaleness",
    "FeedConsumer",
    "FeedItem",
    "FeedSource",
    "LagOverDissemination",
    "LiveDeliveryReport",
    "LiveFeedSystem",
    "StalenessReport",
    "build_report",
    "bursty",
    "disseminate",
    "live_delivery",
    "parse_rss",
    "percentile",
    "periodic",
    "poisson",
    "render_rss",
    "staleness_percentiles",
]
