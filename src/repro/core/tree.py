"""The overlay forest and its delay model.

During construction the overlay is a *forest*: the source-rooted
dissemination tree plus any number of disconnected *fragments* whose roots
are parentless consumers (the paper's ``n <-/`` state).  :class:`Overlay`
owns all nodes, performs structurally-checked mutations (attach/detach,
churn transitions) and derives the chain metadata of §2.1.3.

Delay model
-----------
The paper measures delay in overlay hops anchored at the pull period of the
source's direct children (§2.1.2): a node pulling directly from the source
at period ``T`` sees information no staler than one unit, and every push
hop downstream adds one unit.  Hence for a node at ``h`` hops below the
source, ``DelayAt = h`` (direct children have ``h = 1``).  This matches the
paper's Fig. 1 walkthrough: in the chain ``c <- b <- a <- 0`` node *a*
meets ``l_a = 1``, *b* sees delay 2 and *c* delay 3.

For a node in a fragment that is *not* yet rooted at the source, the actual
delay is undefined; what is locally known (piggy-backed along the chain) is
the *potential* delay the node would observe if the fragment root attached
directly to the source: ``depth-in-fragment + 1``.  :meth:`Overlay.delay_at`
returns the actual delay for rooted nodes and this potential delay for
unrooted ones; use :meth:`Overlay.is_rooted` to distinguish (the
maintenance rules additionally require ``Root(i) == 0``, exactly as in the
paper).

Chain metadata used to be re-derived by walking the parent chain on every
read (O(depth) per read, O(N·D) per simulation round).  Reads now go
through an incrementally maintained :class:`~repro.core.index.ChainIndex`
(amortized O(1)); the original walking code survives as the
``walk_*`` reference implementations, and :meth:`Overlay.check_integrity`
cross-checks the index against them.  See ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.constraints import NodeSpec
from repro.core.errors import (
    ConfigurationError,
    FanoutExceededError,
    OfflineNodeError,
    TopologyError,
    UnknownNodeError,
)
from repro.core.index import ChainIndex, ColumnarChainIndex
from repro.core.node import SOURCE_ID, Node, NodeId
from repro.core.store import NO_PARENT, ColumnarState
from repro.obs.probe import NULL_PROBE, Probe

_BY_NODE_ID = attrgetter("node_id")

#: Node-state backend used when :class:`Overlay` is built without an
#: explicit ``backend``.  ``"columnar"`` (the production default) stores
#: hot node state in the dense column arrays of
#: :class:`~repro.core.store.ColumnarState`; ``"objects"`` is the
#: original object-per-node layout, kept as the cross-check path (the
#: golden-seed guard in ``tests/test_columnar.py`` pins both backends
#: bit-identical, mirroring the PR 2 ``walk_*`` pattern).
DEFAULT_BACKEND = "columnar"

_BACKENDS = ("columnar", "objects")


class Overlay:
    """A LagOver overlay-in-construction: the source plus all consumers.

    The class enforces *structural* invariants on every mutation (tree
    shape, fanout bounds, liveness); it deliberately does **not** enforce
    latency constraints — satisfying those is the construction algorithms'
    job, and transient violations are part of normal operation (§3.2).
    """

    def __init__(
        self,
        source_fanout: int,
        source_name: str = "0",
        backend: Optional[str] = None,
    ) -> None:
        if backend is None:
            backend = DEFAULT_BACKEND
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown overlay backend {backend!r}; choose from {_BACKENDS}"
            )
        #: Which node-state layout backs this overlay (``"columnar"`` or
        #: ``"objects"``); :attr:`store` is ``None`` on the object backend.
        self.backend = backend
        self._nodes: Dict[NodeId, Node] = {}
        self._next_id: NodeId = SOURCE_ID + 1
        source_spec = NodeSpec(latency=1, fanout=source_fanout)
        if backend == "columnar":
            self.store: Optional[ColumnarState] = ColumnarState()
            self.source = self.store.allocate(source_spec, source_name)
        else:
            self.store = None
            self.source = Node(
                node_id=SOURCE_ID, spec=source_spec, name=source_name
            )
        self._nodes[SOURCE_ID] = self.source
        # Incrementally maintained rosters (id order): `_consumers` stays
        # sorted (ids only grow, except on free-list reuse which insorts);
        # `_online` is updated on churn transitions instead of being
        # refiltered O(N) on every access.
        self._consumers: List[Node] = []
        self._online: List[Node] = []
        #: Chain-metadata index: amortized O(1) ``Root``/``DelayAt`` reads,
        #: kept exact by the four checked mutators below.  The columnar
        #: backend keeps the same metadata in column arrays behind the
        #: identical ``entries`` read surface.
        self.chain_index = (
            ColumnarChainIndex(self, self.store)
            if self.store is not None
            else ChainIndex(self)
        )
        # Per-version cache slot for the shared forest scan of
        # :mod:`repro.core.convergence` (owned by that module).
        self._quality_cache = None
        #: Lifetime counts of structural mutations, for the
        #: reconfiguration-cost metrics: ``attaches`` and ``detaches``.
        self.attach_count = 0
        self.detach_count = 0
        #: Observability tap (:mod:`repro.obs`): every structural mutation
        #: is reported here.  The default :data:`~repro.obs.probe.NULL_PROBE`
        #: records nothing; :class:`repro.sim.runner.Simulation` installs
        #: the run's probe.
        self.probe: Probe = NULL_PROBE

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------

    def add_consumer(self, spec: NodeSpec, name: str = "") -> Node:
        """Create a new consumer with the given constraints and return it."""
        if self.store is not None:
            node = self.store.allocate(spec, name)
        else:
            node = Node(node_id=self._next_id, spec=spec, name=name)
        self._next_id = max(self._next_id, node.node_id + 1)
        self._nodes[node.node_id] = node
        if self._consumers and node.node_id < self._consumers[-1].node_id:
            # A recycled id (freed by remove_consumer) lands mid-roster.
            insort(self._consumers, node, key=_BY_NODE_ID)
            insort(self._online, node, key=_BY_NODE_ID)
        else:
            self._consumers.append(node)
            self._online.append(node)  # new consumers start online
        self.chain_index.register(node)
        return node

    def remove_consumer(self, node: Node) -> None:
        """Permanently remove an *offline* consumer, freeing its id.

        This is departure-for-good (a permanently crashed or
        decommissioned peer), not churn: ordinary churn departures keep
        their id so a rejoin can never alias another consumer.  On the
        columnar backend the dense id returns to the allocator's free
        list and the next :meth:`add_consumer` reuses it (property-tested
        in ``tests/test_store.py``).
        """
        if node not in self:
            raise UnknownNodeError(f"{node!r} is not in this overlay")
        if node.is_source:
            raise TopologyError("the source can never be removed")
        if node.online:
            raise OfflineNodeError(
                f"only offline consumers can be removed, got {node!r}"
            )
        if node.parent is not None or node.children:
            raise TopologyError(f"offline {node!r} still has links")
        del self._nodes[node.node_id]
        self._consumers.remove(node)
        self.chain_index.unregister(node)
        if self.store is not None:
            self.store.release(node.node_id)

    def add_population(self, specs: Iterable[Tuple[str, NodeSpec]]) -> List[Node]:
        """Add many consumers from ``(name, spec)`` pairs (see
        :func:`repro.core.constraints.parse_population`)."""
        return [self.add_consumer(spec, name) for name, spec in specs]

    def node(self, node_id: NodeId) -> Node:
        """Look a node up by id; raises :class:`UnknownNodeError` if absent."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    @property
    def consumers(self) -> List[Node]:
        """All consumers (everything except the source), in id order.

        Served from the incrementally maintained roster; the returned
        list is a copy, safe for callers to shuffle or mutate.
        """
        return list(self._consumers)

    @property
    def online_consumers(self) -> List[Node]:
        """Consumers currently online, in id order (roster copy)."""
        return list(self._online)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __contains__(self, node: Node) -> bool:
        return self._nodes.get(node.node_id) is node

    # ------------------------------------------------------------------
    # chain metadata (§2.1.3)
    # ------------------------------------------------------------------

    def fragment_root(self, node: Node) -> Node:
        """``Root(i)``: the top of the chain the node currently belongs to.

        Returns the source if the node is connected to it, otherwise the
        parentless consumer heading the node's fragment (a node with no
        parent is its own root).  Amortized O(1) via the chain index;
        nodes foreign to this overlay fall back to the reference walk.

        On the columnar backend these five readers skip the
        ``_ColumnEntry`` facade and index the store's columns directly —
        same cells the facade reads, minus a property call per read (the
        oracle filter makes millions of them per run).  The ``entries``
        dict stays the membership test either way, so foreign nodes keep
        falling back to the walk.
        """
        store = self.store
        if store is not None:
            node_id = node.node_id
            if node_id in self.chain_index.entries:
                return store.nodes[store.root[node_id]]
            return self.walk_fragment_root(node)
        try:
            return self.chain_index.entries[node.node_id].root
        except KeyError:
            return self.walk_fragment_root(node)

    def depth(self, node: Node) -> int:
        """Number of hops from the node to its fragment root (O(1))."""
        store = self.store
        if store is not None:
            node_id = node.node_id
            if node_id in self.chain_index.entries:
                return store.depth[node_id]
            return self.walk_depth(node)
        try:
            return self.chain_index.entries[node.node_id].depth
        except KeyError:
            return self.walk_depth(node)

    def is_rooted(self, node: Node) -> bool:
        """Whether ``Root(node)`` is the source (node 0)."""
        store = self.store
        if store is not None:
            node_id = node.node_id
            if node_id in self.chain_index.entries:
                return bool(store.rooted[node_id])
            return self.walk_is_rooted(node)
        try:
            return self.chain_index.entries[node.node_id].rooted
        except KeyError:
            return self.walk_is_rooted(node)

    def delay_at(self, node: Node) -> int:
        """``DelayAt(i)``: actual delay if rooted, potential delay otherwise.

        The source itself has delay 0.  A rooted node at ``h`` hops below
        the source observes delay ``h``.  An unrooted node at ``h`` hops
        below its fragment root would observe ``h + 1`` once that root
        attaches directly to the source — the optimistic local estimate the
        construction algorithms plan with.  Amortized O(1).

        This is the single hottest read in the stack (the oracles filter
        every sampled candidate by it), so the entry access is inlined:
        one dict lookup plus one slot load.  The source's own entry
        stores delay 0, so no special case is needed on this path.
        """
        store = self.store
        if store is not None:
            node_id = node.node_id
            if node_id in self.chain_index.entries:
                return store.delay[node_id]
            return self.walk_delay_at(node)
        try:
            return self.chain_index.entries[node.node_id].delay
        except KeyError:
            return self.walk_delay_at(node)

    def meets_latency(self, node: Node) -> bool:
        """Whether the node is rooted at the source within its constraint."""
        store = self.store
        if store is not None:
            node_id = node.node_id
            if node_id not in self.chain_index.entries:
                return self.walk_meets_latency(node)
            if node.is_source:
                return True
            return bool(store.rooted[node_id]) and store.depth[node_id] <= node.latency
        try:
            entry = self.chain_index.entries[node.node_id]
        except KeyError:
            return self.walk_meets_latency(node)
        if node.is_source:
            return True
        return entry.rooted and entry.depth <= node.latency

    # ------------------------------------------------------------------
    # chain metadata, reference implementation (walk-on-read)
    # ------------------------------------------------------------------
    #
    # The pre-index walking code, kept in-tree on purpose: it is the
    # ground truth `check_integrity()` cross-checks the index against,
    # the fallback for nodes foreign to this overlay, and what the
    # golden-seed guard (tests/test_chain_index.py) and the perf harness
    # (benchmarks/perf_chain_index.py) swap back in to prove the index is
    # behavior-invisible and to quantify what it buys.

    def walk_fragment_root(self, node: Node) -> Node:
        """Reference ``Root(i)``: walk the parent chain (O(depth))."""
        current = node
        hops = 0
        while current.parent is not None:
            current = current.parent
            hops += 1
            if hops > len(self._nodes):
                raise TopologyError(f"cycle detected walking up from {node!r}")
        return current

    def walk_depth(self, node: Node) -> int:
        """Reference depth: count hops to the fragment root (O(depth))."""
        current = node
        hops = 0
        while current.parent is not None:
            current = current.parent
            hops += 1
            if hops > len(self._nodes):
                raise TopologyError(f"cycle detected walking up from {node!r}")
        return hops

    def walk_is_rooted(self, node: Node) -> bool:
        """Reference rootedness: derived from the walked root."""
        return self.walk_fragment_root(node).is_source

    def walk_delay_at(self, node: Node) -> int:
        """Reference ``DelayAt(i)``: derived from walked root and depth."""
        if node.is_source:
            return 0
        root = self.walk_fragment_root(node)
        hops = self.walk_depth(node)
        if root.is_source:
            return hops
        return hops + 1

    def walk_meets_latency(self, node: Node) -> bool:
        """Reference constraint check: derived from the walks."""
        if node.is_source:
            return True
        return self.walk_is_rooted(node) and self.walk_delay_at(node) <= node.latency

    def is_converged(self) -> bool:
        """True when every *online* consumer meets its latency constraint.

        This is the convergence criterion behind the paper's "construction
        latency" metric; fanout bounds hold by construction (enforced on
        every attach).
        """
        return all(self.meets_latency(n) for n in self.online_consumers)

    def satisfied_fraction(self) -> float:
        """Fraction of online consumers whose latency constraint is met."""
        online = self.online_consumers
        if not online:
            return 1.0
        satisfied = sum(1 for n in online if self.meets_latency(n))
        return satisfied / len(online)

    # ------------------------------------------------------------------
    # subtree traversal
    # ------------------------------------------------------------------

    def subtree(self, node: Node) -> Iterator[Node]:
        """Yield the node and all its descendants, pre-order."""
        stack = [node]
        seen = 0
        while stack:
            current = stack.pop()
            seen += 1
            if seen > len(self._nodes):
                raise TopologyError(f"cycle detected under {node!r}")
            yield current
            stack.extend(reversed(current.children))

    def descendants(self, node: Node) -> Iterator[Node]:
        """Yield all strict descendants of the node, pre-order."""
        walker = self.subtree(node)
        next(walker)  # skip the node itself
        return walker

    def is_descendant(self, node: Node, ancestor: Node) -> bool:
        """Whether ``ancestor`` lies on the parent chain of ``node``."""
        current = node.parent
        hops = 0
        while current is not None:
            if current is ancestor:
                return True
            current = current.parent
            hops += 1
            if hops > len(self._nodes):
                raise TopologyError(f"cycle detected walking up from {node!r}")
        return False

    def fragment_members(self, node: Node) -> List[Node]:
        """All nodes in the fragment the node belongs to."""
        return list(self.subtree(self.fragment_root(node)))

    # ------------------------------------------------------------------
    # checked mutations
    # ------------------------------------------------------------------

    def attach(self, child: Node, parent: Node) -> None:
        """Make ``child <- parent`` (``parent`` pushes to ``child``).

        Structural checks only: both online, child currently parentless,
        no cycle (``parent`` must not be a descendant of ``child``), and
        ``parent`` must have free fanout.  Latency constraints are *not*
        checked here — callers use :mod:`repro.core.interactions`.
        """
        if child not in self or parent not in self:
            raise UnknownNodeError("attach with a node foreign to this overlay")
        if child is parent:
            raise TopologyError(f"cannot attach {child!r} to itself")
        if child.is_source:
            raise TopologyError("the source can never acquire a parent")
        if not child.online or not parent.online:
            raise OfflineNodeError(f"attach({child!r}, {parent!r}) with offline node")
        if child.parent is not None:
            raise TopologyError(f"{child!r} already has a parent")
        if parent is child or self.is_descendant(parent, child):
            raise TopologyError(f"attaching {child!r} under {parent!r} creates a cycle")
        if parent.free_fanout <= 0:
            raise FanoutExceededError(
                f"{parent!r} has no free fanout (f={parent.fanout})"
            )
        child.parent = parent
        if self.store is not None:
            self.store.parent[child.node_id] = parent.node_id
        parent.children.append(child)
        self.chain_index.on_attach(child, parent)
        # The subtree shift marked the moved nodes; the parent's fanout
        # slack changed too, which only the dirty set cares about.
        self.chain_index.mark(parent)
        self.attach_count += 1
        # Any successful attach ends a source-contact backoff episode
        # (no-op unless backoff is enabled and an episode was running).
        child.source_failures = 0
        child.source_retry_timeout = 0
        self.probe.attach(child.node_id, parent.node_id)

    def detach(self, child: Node, reason: str = "detach") -> Node:
        """Sever ``child`` from its parent (the paper's ``j -/-> i``).

        Returns the former parent.  The child keeps its own subtree and
        becomes a fragment root.  ``reason`` only annotates the emitted
        :class:`~repro.obs.events.Detach` event (which mechanism severed
        the edge); it never changes behaviour.
        """
        parent = child.parent
        if parent is None:
            raise TopologyError(f"{child!r} has no parent to leave")
        parent.children.remove(child)
        child.parent = None
        if self.store is not None:
            self.store.parent[child.node_id] = NO_PARENT
        self.chain_index.on_detach(child)
        self.chain_index.mark(parent)  # parent regained fanout slack
        self.detach_count += 1
        self.probe.detach(child.node_id, parent.node_id, reason)
        return parent

    # ------------------------------------------------------------------
    # churn transitions
    # ------------------------------------------------------------------

    def go_offline(
        self, node: Node, graceful: bool = True, reason: str = "churn"
    ) -> List[Node]:
        """Take a consumer offline (departure).

        The node is severed from its parent; each of its children becomes
        the parentless root of its own fragment (they keep their subtrees).
        Returns the orphaned children.

        ``graceful`` departures (the default — churn leaves are modelled
        as announced) hand each orphan a referral to the leaver's own
        parent: chain metadata is piggy-backed along the chain (§2.1.3),
        so an orphan knows its former grandparent — the natural first
        candidate for re-attachment (it just lost a child slot).  A
        *crash* (``graceful=False``, used by the fault injector) leaves
        no such hint: the orphans must rediscover partners through the
        oracle or the source.  ``reason`` annotates the emitted detach
        events (``{reason}`` for the edge above, ``{reason}-orphan``
        below) and never changes behaviour.
        """
        if node.is_source:
            raise TopologyError("the source never leaves (paper §2.1.2)")
        if not node.online:
            raise OfflineNodeError(f"{node!r} is already offline")
        grandparent = node.parent
        if node.parent is not None:
            self.detach(node, reason=reason)
        orphans = list(node.children)
        for child in orphans:
            child.parent = None
            if self.store is not None:
                self.store.parent[child.node_id] = NO_PARENT
            self.chain_index.on_detach(child)
            child.rounds_without_parent = 0
            # Not counted in detach_count (orphaning is the departing
            # node's doing, not a reconfiguration) but still observable.
            self.probe.detach(child.node_id, node.node_id, f"{reason}-orphan")
            if graceful and grandparent is not None and grandparent.online:
                child.referral = grandparent
                self.probe.referral(child.node_id, grandparent.node_id, reason)
        node.children.clear()
        node.online = False
        if self.store is not None:
            self.store.online[node.node_id] = 0
        self._online.remove(node)
        self.chain_index.touch()
        self.chain_index.mark(node)  # liveness + fanout slack changed
        node.reset_protocol_state()
        return orphans

    def go_online(self, node: Node) -> None:
        """Bring a consumer back online (churn rejoin), with fresh state."""
        if node.online:
            raise OfflineNodeError(f"{node!r} is already online")
        node.online = True
        if self.store is not None:
            self.store.online[node.node_id] = 1
        insort(self._online, node, key=_BY_NODE_ID)
        self.chain_index.touch()
        self.chain_index.mark(node)
        node.reset_protocol_state()

    # ------------------------------------------------------------------
    # integrity and rendering
    # ------------------------------------------------------------------

    def check_integrity(self) -> None:
        """Verify all structural invariants; raises on violation.

        Intended for tests and debug runs: parent/child links must be
        mutually consistent, fanout bounds respected, offline nodes fully
        disconnected, the parent relation acyclic, and the chain index
        and rosters exactly consistent with the reference walks.
        """
        for node in self._nodes.values():
            if len(node.children) > node.fanout:
                raise FanoutExceededError(f"{node!r} exceeds its fanout")
            if len(set(id(c) for c in node.children)) != len(node.children):
                raise TopologyError(f"{node!r} has duplicate children")
            for child in node.children:
                if child.parent is not node:
                    raise TopologyError(f"{child!r} not linked back to {node!r}")
                if not child.online or not node.online:
                    raise OfflineNodeError(f"offline node on edge {child!r}<-{node!r}")
            if node.parent is not None and node not in node.parent.children:
                raise TopologyError(f"{node!r} missing from its parent's children")
            if not node.online and (node.parent is not None or node.children):
                raise OfflineNodeError(f"offline {node!r} still has links")
        for node in self._nodes.values():
            self.walk_fragment_root(node)  # raises on cycles
        # Cross-validate the incremental structures against ground truth.
        self.chain_index.verify()
        if self.store is not None:
            self.store.verify(self)
        # Id reuse means the node table's insertion order is not id order;
        # the rosters' contract is id order, so compare against that.
        expected_consumers = sorted(
            (n for n in self._nodes.values() if not n.is_source),
            key=_BY_NODE_ID,
        )
        if self._consumers != expected_consumers:
            raise TopologyError("consumer roster diverged from the node table")
        if self._online != [n for n in expected_consumers if n.online]:
            raise TopologyError("online roster diverged from node liveness")

    def fragments(self) -> List[Node]:
        """Roots of all fragments: the source plus parentless online consumers."""
        return [self.source] + [n for n in self._online if n.parent is None]

    def render(self) -> str:
        """ASCII rendering of the forest, for examples and debugging."""
        lines: List[str] = []
        for root in self.fragments():
            self._render_subtree(root, prefix="", lines=lines)
        offline = [n.label() for n in self.consumers if not n.online]
        if offline:
            lines.append("offline: " + ", ".join(offline))
        return "\n".join(lines)

    def _render_subtree(self, node: Node, prefix: str, lines: List[str]) -> None:
        marker = "" if not prefix else "+- "
        delay = self.delay_at(node)
        rooted = "" if self.is_rooted(node) else " (unrooted)"
        lines.append(f"{prefix}{marker}{node.label()} delay={delay}{rooted}")
        for child in node.children:
            self._render_subtree(child, prefix + "   ", lines)

    def snapshot(self) -> Dict[NodeId, Optional[NodeId]]:
        """Parent map ``{node_id: parent_id or None}`` for tracing."""
        return {
            n.node_id: (n.parent.node_id if n.parent is not None else None)
            for n in self._nodes.values()
            if not n.is_source
        }
