"""Full-scale runs of the §7 extensions and the beyond-paper studies.

Run: ``python -m repro.experiments.extensions``
"""

from __future__ import annotations

import statistics

from repro.analysis.reporting import ascii_table, banner
from repro.feeds.live import live_delivery
from repro.locality import run_pair
from repro.multifeed import MultiFeedSystem, reuse_oracle_factory
from repro.multipath import delivery_under_failures
from repro.sim.runner import SimulationConfig, run_simulation
from repro.workloads import make as make_workload


def locality_table(population: int = 120, seeds=(0, 1, 2)) -> None:
    print(banner("Extension: locality-gradated construction (Rand)"))
    rows = []
    for seed in seeds:
        for outcome in run_pair(population=population, seed=seed):
            rows.append(
                [
                    seed,
                    outcome.variant,
                    outcome.construction_rounds,
                    round(outcome.mean_edge_distance, 3),
                    f"{outcome.same_domain_fraction:.0%}",
                    round(outcome.mean_delivered_staleness, 2),
                ]
            )
    print(
        ascii_table(
            ["seed", "oracle", "rounds", "edge dist", "same-domain", "staleness"],
            rows,
        )
    )
    print()


def multifeed_table(consumers: int = 120, seeds=(4, 5, 6)) -> None:
    print(banner("Extension: multi-feed reuse over intersecting consumers"))
    rows = []
    for seed in seeds:
        for label, factory in (
            ("independent", None),
            ("reuse-biased", reuse_oracle_factory(0.9)),
        ):
            system = MultiFeedSystem(
                ["news", "sports", "tech"],
                consumer_count=consumers,
                seed=seed,
                oracle_factory=factory,
            )
            converged = system.run_sequential()
            metrics = system.reuse_metrics()
            rows.append(
                [
                    seed,
                    label,
                    converged,
                    metrics.distinct_partnerships,
                    metrics.reused_partnerships,
                    f"{metrics.reuse_fraction:.0%}",
                    round(metrics.mean_neighbors_per_consumer, 2),
                ]
            )
    print(
        ascii_table(
            [
                "seed",
                "oracle",
                "converged",
                "partnerships",
                "reused",
                "reuse frac",
                "mean neighbors",
            ],
            rows,
        )
    )
    print()


def multipath_table(population: int = 120, seed: int = 2) -> None:
    print(banner("Extension: multipath delivery under failures (Rand)"))
    workload = make_workload("Rand", size=population, seed=seed)
    rows = []
    for paths in (1, 2, 3):
        for row in delivery_under_failures(
            workload,
            paths=paths,
            failure_fractions=[0.05, 0.15, 0.25],
            seed=seed,
            trials=10,
        ):
            rows.append(
                [
                    paths,
                    row.failed_fraction,
                    f"{row.delivered_fraction:.1%}",
                    round(row.mean_surviving_paths, 2),
                ]
            )
    print(
        ascii_table(
            ["paths", "failed", "delivered", "surviving descriptions"], rows
        )
    )
    print()


def live_delivery_table(population: int = 120, seed: int = 1) -> None:
    print(banner("Beyond the paper: live delivery under churn (Rand)"))
    workload = make_workload("Rand", size=population, seed=seed)
    rows = []
    for leave in (0.0, 0.01, 0.04):
        report = live_delivery(
            workload, seed=seed, leave_probability=leave, duration=200
        )
        rows.append(
            [
                leave,
                report.published,
                report.deliveries,
                f"{report.on_time_fraction:.3f}",
                f"{report.delivery_ratio:.3f}",
                report.departures,
            ]
        )
    print(
        ascii_table(
            ["leave prob", "items", "deliveries", "on-time", "ratio", "departures"],
            rows,
        )
    )
    print()


def scalability_table(seeds=(1, 2, 3)) -> None:
    print(banner("Beyond the paper: population scalability (Rand)"))
    rows = []
    for algorithm in ("greedy", "hybrid"):
        for population in (60, 120, 240, 480):
            values = []
            for seed in seeds:
                workload = make_workload("Rand", size=population, seed=seed)
                result = run_simulation(
                    workload,
                    SimulationConfig(
                        algorithm=algorithm, seed=seed, max_rounds=12_000
                    ),
                )
                values.append(result.construction_rounds)
            rows.append(
                [
                    algorithm,
                    population,
                    statistics.median(v for v in values if v is not None),
                    values.count(None),
                ]
            )
    print(
        ascii_table(
            ["algorithm", "population", "median rounds", "failures"], rows
        )
    )


def main() -> None:
    locality_table()
    multifeed_table()
    multipath_table()
    live_delivery_table()
    scalability_table()


if __name__ == "__main__":
    main()
