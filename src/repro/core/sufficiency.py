"""Existence of a LagOver: the §3.3 sufficiency condition and exact checks.

Let ``N_l`` be the set of consumers with latency constraint ``l`` and let
``N_0 = {source}``.  The paper's lemma: the constraints of all nodes with
constraint ``l`` can be met — given those of all stricter nodes are — if ::

    |N_l| <= sum_{p in N_{l-1}} f_p
             + sum_{l' < l-1} ( sum_{p in N_{l'}} f_p  -  |N_{l'+1}| )

i.e. the capacity offered by the previous latency class plus all unused
capacity carried over from stricter classes.  Unrolled, this is a simple
level-by-level pass: slots available at depth ``<= l`` must cover ``N_l``,
and every placed node contributes its own fanout as new slots one level
deeper.  :func:`sufficiency_holds` implements exactly that pass.

The condition is sufficient but **not necessary** (§3.3.1): a population
can violate it yet still admit a valid configuration in which some nodes
sit *strictly shallower* than their constraint requires, under a
high-fanout lax node.  :func:`find_feasible_configuration` decides
feasibility exactly (for small populations) by searching depth
assignments, and is used to validate the adversarial counter-example.
"""

from __future__ import annotations

from collections import Counter
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.constraints import NodeSpec
from repro.core.errors import ConfigurationError
from repro.core.node import Node
from repro.core.tree import Overlay

#: A feasible placement: node index (into the spec sequence) -> depth.
DepthAssignment = Dict[int, int]


def latency_classes(specs: Iterable[NodeSpec]) -> Dict[int, List[NodeSpec]]:
    """Group specs into the paper's ``N_l`` classes, keyed by ``l``."""
    classes: Dict[int, List[NodeSpec]] = {}
    for spec in specs:
        classes.setdefault(spec.latency, []).append(spec)
    return classes


def sufficiency_holds(source_fanout: int, specs: Sequence[NodeSpec]) -> bool:
    """Whether the §3.3 sufficient condition holds for this population.

    Performs the unrolled level pass: ``available`` starts as the source's
    fanout (slots at any depth >= 1); each class ``N_l`` must fit into the
    slots accumulated so far, and contributes its own fanout as new slots
    for laxer classes.
    """
    if source_fanout < 0:
        raise ConfigurationError("source fanout must be >= 0")
    classes = latency_classes(specs)
    if not classes:
        return True
    available = source_fanout
    for l in range(1, max(classes) + 1):
        members = classes.get(l, [])
        if len(members) > available:
            return False
        available -= len(members)
        available += sum(spec.fanout for spec in members)
    return True


def first_violating_latency(
    source_fanout: int, specs: Sequence[NodeSpec]
) -> Optional[int]:
    """The smallest latency class at which the §3.3 condition fails,
    or ``None`` if the condition holds (used by workload repair)."""
    classes = latency_classes(specs)
    if not classes:
        return None
    available = source_fanout
    for l in range(1, max(classes) + 1):
        members = classes.get(l, [])
        if len(members) > available:
            return l
        available -= len(members)
        available += sum(spec.fanout for spec in members)
    return None


def max_admissible_class_size(
    source_fanout: int, specs: Sequence[NodeSpec], latency: int
) -> int:
    """Lower bound (per the §3.3 lemma) on how many *additional* nodes with
    constraint ``latency`` the population could still accommodate."""
    classes = latency_classes(specs)
    available = source_fanout
    for l in range(1, latency + 1):
        members = classes.get(l, [])
        available -= len(members)
        if l < latency:
            available += sum(spec.fanout for spec in members)
    return max(0, available)


def check_depth_assignment(
    source_fanout: int, specs: Sequence[NodeSpec], depths: Sequence[int]
) -> bool:
    """Whether a depth assignment is realizable as a tree meeting all
    constraints.

    A depth assignment is realizable iff every node's depth is within
    ``[1, l_i]`` and, for every depth ``d``, the number of nodes at ``d``
    does not exceed the total fanout of nodes at ``d - 1`` (depth 0 being
    the source).  Any such counting-feasible assignment can be turned into
    an actual tree by matching children to parents arbitrarily, because
    slots are interchangeable.
    """
    if len(depths) != len(specs):
        raise ConfigurationError("one depth per spec required")
    for spec, depth in zip(specs, depths):
        if not 1 <= depth <= spec.latency:
            return False
    count_at = Counter(depths)
    capacity_at = {0: source_fanout}
    for spec, depth in zip(specs, depths):
        capacity_at[depth] = capacity_at.get(depth, 0) + spec.fanout
    for depth, count in count_at.items():
        if count > capacity_at.get(depth - 1, 0):
            return False
    return True


def find_feasible_configuration(
    source_fanout: int,
    specs: Sequence[NodeSpec],
    max_nodes: int = 14,
) -> Optional[DepthAssignment]:
    """Exact feasibility check by exhaustive search over depth assignments.

    Returns a feasible ``{node_index: depth}`` assignment, or ``None`` if
    no configuration meets every latency and fanout constraint.  Intended
    for the small toy populations of §3.3.1; refuses populations larger
    than ``max_nodes`` (the search space is the product of the latency
    constraints).
    """
    if len(specs) > max_nodes:
        raise ConfigurationError(
            f"exact feasibility search limited to {max_nodes} nodes; "
            f"got {len(specs)} (use sufficiency_holds for large populations)"
        )
    search_space = 1
    for spec in specs:
        search_space *= spec.latency
    if search_space > 5_000_000:
        raise ConfigurationError(
            f"exact feasibility search space too large ({search_space} "
            "assignments); use sufficiency_holds for large populations"
        )
    depth_ranges = [range(1, spec.latency + 1) for spec in specs]
    for depths in product(*depth_ranges):
        if check_depth_assignment(source_fanout, specs, depths):
            return dict(enumerate(depths))
    return None


def build_configuration(
    source_fanout: int,
    specs: Sequence[Tuple[str, NodeSpec]],
    assignment: DepthAssignment,
) -> Overlay:
    """Materialize a depth assignment as an actual :class:`Overlay`.

    Nodes are attached depth by depth, each to an arbitrary parent with
    free fanout at the previous depth.  Raises if the assignment is not
    realizable (see :func:`check_depth_assignment`).
    """
    overlay = Overlay(source_fanout=source_fanout)
    nodes = overlay.add_population(specs)
    by_depth: Dict[int, List[Node]] = {}
    for index, depth in assignment.items():
        by_depth.setdefault(depth, []).append(nodes[index])
    parents_at_prev: List[Node] = [overlay.source]
    for depth in range(1, max(by_depth, default=0) + 1):
        placed = by_depth.get(depth, [])
        slots = [p for p in parents_at_prev for _ in range(p.free_fanout)]
        if len(placed) > len(slots):
            raise ConfigurationError(
                f"assignment not realizable: {len(placed)} nodes at depth "
                f"{depth} but only {len(slots)} slots"
            )
        for child, parent in zip(placed, slots):
            overlay.attach(child, parent)
        parents_at_prev = placed
    return overlay
