"""Consumer-side feed state.

Each overlay consumer runs a :class:`FeedConsumer`: it records which items
have arrived and when, regardless of whether they came from a direct pull
at the source or a push from the overlay parent.  The dissemination engine
(:mod:`repro.feeds.dissemination`) drives delivery; this class is pure
bookkeeping, which is what makes the staleness reports easy to audit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.feeds.items import FeedItem


@dataclasses.dataclass
class Arrival:
    """One item's delivery at one consumer."""

    item: FeedItem
    arrived_at: float

    @property
    def staleness(self) -> float:
        """Item age on arrival, in feed time units."""
        return self.arrived_at - self.item.published_at


class FeedConsumer:
    """Per-consumer delivery log and cursor."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.last_seen_seq = 0
        self.arrivals: Dict[int, Arrival] = {}

    def deliver(self, items: List[FeedItem], now: float) -> List[FeedItem]:
        """Record newly arriving items; returns those actually new here."""
        fresh = []
        for item in items:
            if item.seq in self.arrivals:
                continue
            self.arrivals[item.seq] = Arrival(item=item, arrived_at=now)
            fresh.append(item)
        if fresh:
            self.last_seen_seq = max(self.last_seen_seq, fresh[-1].seq)
        return fresh

    def staleness_values(self) -> List[float]:
        """Staleness of every delivered item, in arrival order."""
        return [
            arrival.staleness
            for _, arrival in sorted(self.arrivals.items())
        ]

    def worst_staleness(self) -> float:
        """Worst item age on arrival (0.0 if nothing arrived)."""
        values = self.staleness_values()
        return max(values) if values else 0.0

    def received_count(self) -> int:
        return len(self.arrivals)
