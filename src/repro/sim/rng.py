"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of a simulation (protocol interaction order,
oracle sampling, churn, asynchrony, workload generation, feed publishing)
draws from its *own* named stream derived from the experiment seed.  This
keeps components independent — enabling churn, for example, does not
perturb the oracle's choices — which is what makes paired comparisons
(greedy vs. hybrid on the *same* workload and churn trace) meaningful.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, stream: str) -> int:
    """Derive a stable 64-bit child seed for a named stream.

    Uses SHA-256 over ``(root_seed, stream)`` so streams are independent
    and stable across Python versions and processes (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{root_seed}/{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_stream(root_seed: int, stream: str) -> random.Random:
    """A :class:`random.Random` seeded for the named stream."""
    return random.Random(derive_seed(root_seed, stream))


class StreamFactory:
    """Factory handing out named, independent RNG streams for one seed.

    >>> streams = StreamFactory(42)
    >>> churn_rng = streams.get("churn")
    >>> oracle_rng = streams.get("oracle")

    Asking twice for the same name returns the *same* stream object, so a
    component and its helpers share state, while distinct names never do.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed
        self._streams: dict = {}

    def get(self, stream: str) -> random.Random:
        if stream not in self._streams:
            self._streams[stream] = make_stream(self.root_seed, stream)
        return self._streams[stream]
