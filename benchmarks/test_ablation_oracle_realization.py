"""Ablation — what the oracle's implementation realism costs.

The paper simulates omniscient oracles and *sketches* deployments: a
DHT-hosted directory (OpenDHT/Syndic8) for the filtered oracles, random
walkers over an unstructured overlay for Oracle Random.  We run all
three against the same workloads.  Shapes asserted:

* the DHT directory (with its periodic-refresh staleness) tracks the
  omniscient O3 closely;
* random walkers realize O1 at a real but bounded slowdown;
* everything still converges — staleness and sampling noise degrade,
  never break, the construction.

A bonus observation worth the bench output: the *stale* capacity view of
the DHT directory blunts O2b's starvation problem — a stale record can
re-enable exactly the reconfiguring interactions the fresh filter
forbids.
"""

from repro.analysis.reporting import ascii_table
from repro.experiments import ablations

from benchmarks.conftest import BENCH, run_once


def test_oracle_realizations(benchmark):
    rows = run_once(
        benchmark, ablations.oracle_realization_comparison, profile=BENCH
    )
    print()
    print(ascii_table(ablations.REALIZATION_HEADERS, rows))

    by_case = {(row[0], row[1]): row for row in rows}
    omniscient_o3 = by_case[("omniscient", "random-delay")]
    dht_o3 = by_case[("dht", "random-delay")]
    omniscient_o1 = by_case[("omniscient", "random")]
    walk_o1 = by_case[("random-walk", "random")]

    for row in rows:
        assert row[3] == 0, f"{row[:2]}: runs got stuck"
    # DHT directory ~ omniscient (small constant factor).
    assert dht_o3[2] <= 4 * omniscient_o3[2]
    # Walkers are noisier than a true uniform sample but bounded.
    assert walk_o1[2] <= 8 * omniscient_o1[2]
