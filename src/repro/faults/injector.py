"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` belongs to one simulation run.  The runner
calls :meth:`FaultInjector.inject` once per round — *after* the round's
action roster has been shuffled, so crash victims can land mid-schedule
and the runner's ``if not node.online`` guard is what keeps them from
acting posthumously (a tested behaviour, not a defensive nicety).

Every random choice the injector makes (crash victims, partition sides)
comes from the dedicated ``"faults"`` RNG stream handed in by the
runner's :class:`~repro.sim.rng.StreamFactory`.  A plan that fires
nothing draws nothing, which is what makes a
:class:`~repro.faults.plan.NullFaultPlan` run bit-identical to a run
with no plan installed.

Injections are reported twice: as :class:`~repro.obs.events.FaultInjected`
protocol events through the overlay's probe, and as fault rounds to the
``on_fault`` callback (the runner wires it to
:meth:`repro.sim.metrics.MetricsCollector.note_fault`) from which the
recovery metrics — time-to-recover, availability, per-fault recovery
series — are derived.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.tree import Overlay
from repro.faults.plan import (
    CrashNodes,
    FaultPlan,
    FaultSpec,
    MassCrash,
    OracleOutage,
    SourceOutage,
    StaleOracleView,
    ViewPartition,
)
from repro.faults.state import FaultState


class FaultInjector:
    """Applies one fault plan to one overlay, round by round."""

    def __init__(
        self,
        overlay: Overlay,
        plan: FaultPlan,
        rng: random.Random,
        on_fault: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.overlay = overlay
        self.plan = plan
        self.rng = rng
        self.on_fault = on_fault
        self.state = FaultState()
        #: Lifetime counts, surfaced on the simulation result.
        self.injected = 0
        self.crashes = 0
        self.rejoins = 0
        self._by_round: Dict[int, List[FaultSpec]] = {}
        for spec in plan.specs:
            self._by_round.setdefault(spec.round, []).append(spec)
        #: round -> node ids due to rejoin in a burst that round.
        self._pending_rejoins: Dict[int, List[int]] = {}

    @property
    def probe(self):
        """The run's observability probe (shared through the overlay)."""
        return self.overlay.probe

    # ------------------------------------------------------------------

    def inject(self, now: int) -> None:
        """Advance fault state to round ``now`` and fire due specs."""
        self.state.now = now
        due_rejoins = self._pending_rejoins.pop(now, None)
        if due_rejoins:
            self._mass_rejoin(now, due_rejoins)
        for spec in self._by_round.pop(now, ()):
            self._apply(spec, now)

    # ------------------------------------------------------------------

    def _fired(self, now: int, fault: str, affected: int) -> None:
        self.injected += 1
        self.probe.fault_injected(fault, affected)
        if self.on_fault is not None:
            self.on_fault(now)

    def _apply(self, spec: FaultSpec, now: int) -> None:
        if isinstance(spec, MassCrash):
            online = self.overlay.online_consumers  # id order: deterministic
            count = max(1, round(len(online) * spec.fraction)) if online else 0
            victims = self.rng.sample(online, count) if count else []
            self._crash(now, victims, spec.graceful, spec.rejoin_after)
            self._fired(
                now, "mass-leave" if spec.graceful else "mass-crash", len(victims)
            )
        elif isinstance(spec, CrashNodes):
            victims = [
                self.overlay.node(node_id)
                for node_id in spec.node_ids
                if self.overlay.node(node_id).online
            ]
            self._crash(now, victims, spec.graceful, spec.rejoin_after)
            self._fired(now, "crash-nodes", len(victims))
        elif isinstance(spec, SourceOutage):
            self.state.source_down_until = max(
                self.state.source_down_until, now + spec.duration
            )
            self._fired(now, "source-outage", spec.duration)
        elif isinstance(spec, OracleOutage):
            self.state.oracle_down_until = max(
                self.state.oracle_down_until, now + spec.duration
            )
            self._fired(now, "oracle-outage", spec.duration)
        elif isinstance(spec, StaleOracleView):
            self.state.stale_until = max(
                self.state.stale_until, now + spec.duration
            )
            self.state.staleness = spec.staleness
            self._fired(now, "stale-view", spec.duration)
        elif isinstance(spec, ViewPartition):
            # Every consumer gets a side, online or not — a peer that
            # rejoins mid-partition lands on its assigned side.
            self.state.side_of = {
                node.node_id: self.rng.randrange(spec.sides)
                for node in self.overlay.consumers
            }
            self.state.partition_until = max(
                self.state.partition_until, now + spec.duration
            )
            self._fired(now, "partition", spec.sides)
        else:  # pragma: no cover - plan validation rejects unknown specs
            raise TypeError(f"unhandled fault spec {spec!r}")

    def _crash(self, now, victims, graceful: bool, rejoin_after) -> None:
        reason = "leave" if graceful else "crash"
        for node in victims:
            self.overlay.go_offline(node, graceful=graceful, reason=reason)
            self.crashes += 1
        if rejoin_after is not None and victims:
            self._pending_rejoins.setdefault(now + rejoin_after, []).extend(
                node.node_id for node in victims
            )

    def _mass_rejoin(self, now: int, node_ids: List[int]) -> None:
        """Bring a crash cohort back in one burst (thundering herd)."""
        revived = 0
        for node_id in node_ids:
            node = self.overlay.node(node_id)
            if not node.online:  # churn may have beaten us to the rejoin
                self.overlay.go_online(node)
                revived += 1
                self.rejoins += 1
        if revived:
            self._fired(now, "mass-rejoin", revived)
