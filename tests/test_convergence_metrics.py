"""Unit tests for repro.core.convergence (quality measures)."""

from repro.core.convergence import (
    depth_histogram,
    latency_gradation_violations,
    measure,
    violated_nodes,
)
from repro.core.tree import Overlay

from tests.conftest import build_chain, spec


def small_tree():
    """source(f=2) <- a(l1) <- b(l3); c(l2) parentless; d offline."""
    overlay = Overlay(source_fanout=2)
    a = overlay.add_consumer(spec(1, 2), name="a")
    b = overlay.add_consumer(spec(3, 2), name="b")
    overlay.add_consumer(spec(2, 1), name="c")
    d = overlay.add_consumer(spec(2, 1), name="d")
    build_chain(overlay, a, b)
    overlay.go_offline(d)
    return overlay


class TestMeasure:
    def test_counts(self):
        quality = measure(small_tree())
        assert quality.online == 3
        assert quality.rooted == 2
        assert quality.satisfied == 2
        assert quality.fragments == 2  # source tree + c
        assert quality.max_depth == 2
        assert quality.used_source_fanout == 1

    def test_satisfied_fraction_and_converged(self):
        quality = measure(small_tree())
        assert quality.satisfied_fraction == 2 / 3
        assert not quality.converged

    def test_mean_slack(self):
        # a: l=1 at depth 1 (slack 0); b: l=3 at depth 2 (slack 1).
        assert measure(small_tree()).mean_slack == 0.5

    def test_empty_population(self):
        quality = measure(Overlay(source_fanout=1))
        assert quality.converged
        assert quality.satisfied_fraction == 1.0
        assert quality.mean_slack == 0.0


class TestHistogramsAndViolations:
    def test_depth_histogram(self):
        assert depth_histogram(small_tree()) == {1: 1, 2: 1}

    def test_violated_nodes(self):
        overlay = small_tree()
        names = {n.name for n in violated_nodes(overlay)}
        assert names == {"c"}  # unrooted; a and b satisfied, d offline

    def test_gradation_violations_empty_for_ordered_tree(self):
        assert latency_gradation_violations(small_tree()) == []

    def test_gradation_violation_detected(self):
        overlay = Overlay(source_fanout=1)
        lax = overlay.add_consumer(spec(9, 1), name="lax")
        strict = overlay.add_consumer(spec(2, 1), name="strict")
        build_chain(overlay, lax, strict)
        violations = latency_gradation_violations(overlay)
        assert [n.name for n in violations] == ["strict"]

    def test_source_edges_never_count_as_violations(self):
        overlay = Overlay(source_fanout=1)
        lax = overlay.add_consumer(spec(9, 1), name="lax")
        overlay.attach(lax, overlay.source)
        assert latency_gradation_violations(overlay) == []
