"""Shared execution helpers for the figure experiments."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.stats import MedianOfRuns
from repro.sim.runner import SimulationConfig, SimulationResult, run_simulation
from repro.workloads import make as make_workload


def run_repeats(
    family: str,
    config: SimulationConfig,
    population: int,
    repeats: int,
    base_seed: int = 0,
    vary_workload: bool = True,
) -> MedianOfRuns:
    """Run ``repeats`` constructions and collect construction latencies.

    Each repeat uses its own root seed; with ``vary_workload`` the
    workload draw varies with the seed too (representing the *family*),
    otherwise one fixed draw is replayed (isolating protocol randomness,
    as in Fig. 2).
    """
    values: List[Optional[int]] = []
    for offset in range(repeats):
        seed = base_seed + offset
        workload_seed = seed if vary_workload else base_seed
        workload = make_workload(family, size=population, seed=workload_seed)
        result = run_simulation(workload, config.with_(seed=seed))
        values.append(result.construction_rounds if result.converged else None)
    return MedianOfRuns(values=values)


def run_single(
    family: str,
    config: SimulationConfig,
    population: int,
    seed: int = 0,
) -> SimulationResult:
    """One construction run of a family (workload seed = run seed)."""
    workload = make_workload(family, size=population, seed=seed)
    return run_simulation(workload, config.with_(seed=seed))
