"""Probe/recorder overhead benchmark: what observability costs.

The :mod:`repro.obs` contract is that observation never changes a run;
this suite quantifies the other half of the bargain — what it *costs*.
One churned construction workload is run three ways:

* ``off`` — the zero-cost :data:`~repro.obs.probe.NULL_PROBE`, no
  recorders (the production default);
* ``recorder`` — a full :class:`~repro.obs.probe.RecordingProbe`
  (typed event objects plus live aggregates);
* ``ring`` — the v2 flight-recorder stack: the health timeseries
  (O(dirty-set) captures into a bounded ring) plus round-domain
  staleness attribution, with the probe off.

The headline gate is ``ring_ratio`` — flight-recorder-on over
recorder-off rounds/sec — which the acceptance bar requires to stay
within 10% of 1.0; the deterministic ``events_total`` and
``health_samples`` counts pin that the instrumentation itself never
drifts.  Timings take the best of ``repeats`` runs per mode to damp
scheduler noise.

Scales: full N=2000 × 40 rounds, quick N=300 × 8 rounds (CI perf gate).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.bench.registry import BenchContext, BenchResult, Metric, register
from repro.obs.health import HealthConfig
from repro.obs.probe import RecordingProbe
from repro.sim.churn import ChurnConfig
from repro.sim.runner import Simulation, SimulationConfig
from repro.workloads.random_workload import rand_workload

#: End-state statistics that must be identical across all three modes
#: (recorders may never perturb a run).
INVARIANT_KEYS = ("attaches", "detaches", "satisfied_fraction")


def run_mode(
    mode: str, population: int, rounds: int, seed: int
) -> dict:
    """One seeded churned run in the given observability mode."""
    workload, _ = rand_workload(size=population, seed=seed, source_fanout=4)
    config = SimulationConfig(
        algorithm="hybrid",
        oracle="random-delay",
        seed=seed,
        churn=ChurnConfig(),
        max_rounds=rounds,
        stop_at_convergence=False,
        health=HealthConfig() if mode == "ring" else None,
        attribution=(mode == "ring"),
    )
    probe: Optional[RecordingProbe] = (
        RecordingProbe() if mode == "recorder" else None
    )
    simulation = Simulation(workload, config, probe=probe)
    start = time.perf_counter()
    result = simulation.run()
    elapsed = time.perf_counter() - start
    stats = {
        "mode": mode,
        "rounds": result.rounds_run,
        "seconds": elapsed,
        "rounds_per_sec": result.rounds_run / elapsed,
        "satisfied_fraction": result.final_quality.satisfied_fraction,
        "attaches": result.attaches,
        "detaches": result.detaches,
    }
    if probe is not None:
        stats["events_total"] = len(probe.events)
    if simulation.health is not None:
        stats["health_samples"] = len(simulation.health.samples)
        stats["health_dropped"] = simulation.health.samples.dropped
    return stats


def best_of(mode: str, population: int, rounds: int, seed: int, repeats: int) -> dict:
    """Fastest of ``repeats`` runs (deterministic fields are identical)."""
    runs = [run_mode(mode, population, rounds, seed) for _ in range(repeats)]
    return max(runs, key=lambda stats: stats["rounds_per_sec"])


@register(
    "obs.overhead",
    tags=("obs", "perf"),
    metrics={
        "rounds_per_sec": Metric(
            unit="rounds/s",
            higher_is_better=True,
            tolerance=0.35,
            description="recorder-off construction throughput",
        ),
        "ring_ratio": Metric(
            unit="x",
            higher_is_better=True,
            tolerance=0.10,
            description="flight-recorder-on over recorder-off rounds/sec "
            "(the within-10% acceptance gate)",
        ),
        "recorder_ratio": Metric(
            unit="x",
            higher_is_better=True,
            tolerance=0.20,
            description="full RecordingProbe over recorder-off rounds/sec",
        ),
        "events_total": Metric(
            unit="events",
            higher_is_better=False,
            tolerance=0.0,
            deterministic=True,
            description="events a RecordingProbe captures (seeded, exact)",
        ),
        "health_samples": Metric(
            unit="samples",
            higher_is_better=True,
            tolerance=0.0,
            deterministic=True,
            description="flight-recorder samples held (seeded, exact)",
        ),
    },
    description="NullProbe vs RecordingProbe vs flight-recorder overhead "
    "on a churned construction",
)
def obs_overhead(ctx: BenchContext) -> BenchResult:
    population = int(ctx.opt("population", 300 if ctx.quick else 2000))
    rounds = int(ctx.opt("rounds", 8 if ctx.quick else 40))
    seed = int(ctx.opt("seed", 0))
    repeats = int(ctx.opt("repeats", 2))
    off = best_of("off", population, rounds, seed, repeats)
    recorder = best_of("recorder", population, rounds, seed, repeats)
    ring = best_of("ring", population, rounds, seed, repeats)
    failures = []
    for key in INVARIANT_KEYS:
        values = {off[key], recorder[key], ring[key]}
        if len(values) != 1:
            failures.append(f"{key} diverged across observability modes")
    metrics = {
        "rounds_per_sec": off["rounds_per_sec"],
        "ring_ratio": ring["rounds_per_sec"] / off["rounds_per_sec"],
        "recorder_ratio": recorder["rounds_per_sec"] / off["rounds_per_sec"],
        "events_total": float(recorder["events_total"]),
        "health_samples": float(ring["health_samples"]),
    }
    detail = {
        "benchmark": "obs_overhead",
        "population": population,
        "rounds": rounds,
        "seed": seed,
        "repeats": repeats,
        "churn": True,
        "off": off,
        "recorder": recorder,
        "ring": ring,
    }
    return BenchResult(metrics=metrics, detail=detail, failures=tuple(failures))
