"""Tests for the direct-polling and FeedTree/Scribe baselines."""

import pytest

from repro.baselines.client_server import DirectPollingBaseline
from repro.baselines.feedtree import evaluate_feedtree
from repro.baselines.scribe import ScribeMulticast
from repro.core.errors import ConfigurationError
from repro.dht.chord import ChordRing
from repro.workloads import make as make_workload
from repro.workloads.base import make_workload as build_workload

from tests.conftest import spec


class TestDirectPolling:
    def test_small_population_fully_served(self):
        workload = make_workload("Rand", size=20, seed=1)
        report = DirectPollingBaseline(workload, capacity=50, seed=1).run(60.0)
        assert report.rejection_rate == 0.0
        assert report.satisfied_fraction == 1.0

    def test_load_grows_linearly_with_population(self):
        loads = []
        for size in (25, 50, 100):
            workload = make_workload("Rand", size=size, seed=1)
            report = DirectPollingBaseline(workload, capacity=10_000, seed=1).run(
                60.0
            )
            loads.append(report.offered_load_per_unit)
        assert loads[1] > 1.5 * loads[0]
        assert loads[2] > 1.5 * loads[1]

    def test_overload_causes_rejections_and_misses(self):
        workload = make_workload("Rand", size=200, seed=1)
        report = DirectPollingBaseline(workload, capacity=10, seed=1).run(60.0)
        assert report.rejection_rate > 0.3
        assert report.satisfied_fraction < 0.7

    def test_strict_clients_poll_more(self):
        strict = build_workload("strict", 3, [(f"s{i}", spec(1, 1)) for i in range(10)])
        lax = build_workload("lax", 3, [(f"l{i}", spec(10, 1)) for i in range(10)])
        strict_report = DirectPollingBaseline(strict, capacity=10_000, seed=1).run(60.0)
        lax_report = DirectPollingBaseline(lax, capacity=10_000, seed=1).run(60.0)
        assert strict_report.requests > 5 * lax_report.requests

    def test_invalid_capacity(self):
        workload = make_workload("Rand", size=10, seed=1)
        with pytest.raises(ConfigurationError):
            DirectPollingBaseline(workload, capacity=0)


class TestScribe:
    def _ring(self, n):
        ring = ChordRing(bits=16)
        for index in range(n):
            ring.add_peer(f"p{index}")
        return ring

    def test_tree_reaches_every_subscriber(self):
        ring = self._ring(40)
        subscribers = [f"p{i}" for i in range(0, 40, 2)]
        tree = ScribeMulticast(ring).build_tree("g", subscribers)
        for name in subscribers:
            assert tree.depth(name) >= 0  # raises on breakage / cycles

    def test_tree_parents_form_no_cycles(self):
        ring = self._ring(60)
        subscribers = [f"p{i}" for i in range(60)]
        tree = ScribeMulticast(ring).build_tree("g", subscribers)
        depths = [tree.depth(name) for name in subscribers]
        assert max(depths) >= 1

    def test_rendezvous_is_key_owner(self):
        ring = self._ring(20)
        tree = ScribeMulticast(ring).build_tree("g", ["p1", "p2"])
        assert tree.rendezvous == ring.owner_of("g").name

    def test_forwarders_are_non_subscribers(self):
        ring = self._ring(50)
        subscribers = [f"p{i}" for i in range(5)]
        tree = ScribeMulticast(ring).build_tree("g", subscribers)
        assert tree.forwarders().isdisjoint(subscribers)

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            ScribeMulticast(ChordRing()).build_tree("g", [])


class TestFeedTreeEvaluation:
    def test_report_fields_consistent(self):
        workload = make_workload("BiCorr", size=80, seed=2)
        report = evaluate_feedtree(workload, infrastructure_peers=40)
        assert report.subscribers == 80
        assert 0.0 <= report.satisfied_fraction <= 1.0
        assert report.max_delay >= 1
        assert report.mean_delay <= report.max_delay

    def test_feedtree_violates_constraints_lagover_would_meet(self):
        """The related-work contrast: geometry-built trees strand strict
        consumers and ignore fanout declarations."""
        workload = make_workload("BiCorr", size=120, seed=1)
        report = evaluate_feedtree(workload, infrastructure_peers=100)
        assert report.satisfied_fraction < 0.9
        assert report.fanout_violations > 0
        assert report.uninterested_forwarders > 0

    def test_without_infrastructure_no_uninterested_forwarders_possible(self):
        workload = make_workload("Rand", size=30, seed=1)
        report = evaluate_feedtree(workload, infrastructure_peers=0)
        assert report.uninterested_forwarders == 0
