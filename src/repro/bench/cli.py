"""The ``repro bench`` subcommand: ``run``, ``list``, ``compare``.

Kept next to the harness it drives; :mod:`repro.cli` delegates here.

``run`` selects benchmarks by name and/or ``--tag`` (default: all),
runs them through the shared runner, prints one line per benchmark,
writes the run document (``--output``) and appends one compact line per
benchmark to the history file (``--history``, opt out with
``--no-history``).  Exit 1 if any benchmark reported a hard failure.

``compare`` gates a current run against a baseline (either side may be
a run document or a ``.jsonl`` history file) with the noise-aware rules
of :mod:`repro.bench.compare`; exit 1 on regression, 2 on unreadable
input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.analysis.reporting import ascii_table
from repro.bench.compare import compare_files
from repro.bench.history import DEFAULT_HISTORY, append_history
from repro.bench.registry import load_suites
from repro.bench.runner import RunnerConfig, run_benchmarks
from repro.bench.schema import make_run_document, metric_medians
from repro.core.errors import ConfigurationError


def configure_parser(commands: argparse._SubParsersAction) -> None:
    """Attach the ``bench`` subcommand tree to the CLI."""
    bench = commands.add_parser(
        "bench",
        help="benchmark harness: run registered benchmarks, compare runs",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    run = bench_commands.add_parser(
        "run", help="run registered benchmarks and record the results"
    )
    run.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="benchmark names to run (default: all registered)",
    )
    run.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="TAG",
        help="also run every benchmark carrying TAG (repeatable)",
    )
    run.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke scale instead of the full workloads",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="parallelism hint passed to benchmarks that can fan out "
        "through repro.par (0 = serial)",
    )
    run.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override every benchmark's registered repeat count",
    )
    run.add_argument(
        "--warmup",
        type=int,
        default=None,
        help="override every benchmark's registered warmup count",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="also run each benchmark once under cProfile and embed the "
        "top-N cumulative-time rows in its record",
    )
    run.add_argument(
        "--profile-top",
        type=int,
        default=15,
        help="rows of the cProfile table to keep (with --profile)",
    )
    run.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the full run document (schema repro.bench/run/v1) "
        "to PATH",
    )
    run.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        metavar="PATH",
        help=f"history file to append to (default {DEFAULT_HISTORY})",
    )
    run.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the history file",
    )

    lister = bench_commands.add_parser(
        "list", help="list registered benchmarks, their tags and metrics"
    )
    lister.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="TAG",
        help="only list benchmarks carrying TAG (repeatable)",
    )

    cmp_parser = bench_commands.add_parser(
        "compare",
        help="compare a current run against a baseline; exit 1 on "
        "regression",
    )
    cmp_parser.add_argument(
        "baseline", help="baseline run document or .jsonl history file"
    )
    cmp_parser.add_argument(
        "current", help="current run document or .jsonl history file"
    )
    cmp_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override every metric's relative tolerance (e.g. 0.2)",
    )


def _headline(record: dict) -> str:
    """The few most telling medians of a record, rendered compactly."""
    medians = metric_medians(record)
    parts: List[str] = []
    for name in sorted(medians)[:4]:
        parts.append(f"{name}={medians[name]:g}")
    return "  ".join(parts)


def _cmd_run(args: argparse.Namespace) -> int:
    registry = load_suites()
    try:
        benches = registry.select(names=args.names, tags=args.tag)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not benches:
        print("error: no benchmarks selected", file=sys.stderr)
        return 2
    config = RunnerConfig(
        quick=args.quick,
        workers=args.workers,
        repeats=args.repeats,
        warmup=args.warmup,
        profile=args.profile,
        profile_top=args.profile_top,
    )
    scale = "quick" if args.quick else "full"
    print(f"bench run: {len(benches)} benchmark(s), {scale} scale")

    def progress(record: dict) -> None:
        status = "FAILED" if record["failures"] else "ok"
        print(
            f"  {record['name']:28s} {record['seconds']:7.2f}s  {status:6s} "
            f"{_headline(record)}",
            flush=True,
        )
        for failure in record["failures"]:
            print(f"    FAILURE: {failure}", file=sys.stderr)

    records = run_benchmarks(benches, config, progress=progress)
    if args.profile:
        for record in records:
            print(f"\nprofile: {record['name']}")
            for line in record.get("profile", []):
                print(f"  {line}")
    if args.output:
        document = make_run_document(records)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote run document to {args.output}")
    if not args.no_history:
        written = append_history(args.history, records)
        print(f"appended {written} record(s) to {args.history}")
    failed = [record["name"] for record in records if record["failures"]]
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    registry = load_suites()
    benches = registry.select(tags=args.tag) if args.tag else list(
        registry.select()
    )
    rows = [
        [
            bench.name,
            ",".join(bench.tags),
            ",".join(sorted(bench.metrics)),
            bench.description,
        ]
        for bench in benches
    ]
    print(ascii_table(["benchmark", "tags", "metrics", "description"], rows))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        report = compare_files(
            args.baseline,
            args.current,
            tolerance=args.tolerance,
            registry=load_suites(),
        )
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if report.deltas:
        print(
            ascii_table(
                [
                    "benchmark",
                    "metric",
                    "baseline",
                    "current",
                    "change",
                    "allowed",
                    "status",
                ],
                [delta.render() for delta in report.deltas],
            )
        )
    else:
        print("no comparable metrics between the two sides")
    for warning in report.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if report.regressions:
        for delta in report.regressions:
            print(
                f"REGRESSION: {delta.benchmark} {delta.metric} "
                f"{delta.baseline:g} -> {delta.current:g} "
                f"(worse by {delta.worse_by:.1%}, allowed "
                f"{delta.tolerance:.0%})",
                file=sys.stderr,
            )
        return 1
    print(f"compare: ok ({len(report.deltas)} metric(s) within tolerance)")
    return 0


def run_cli(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``bench`` invocation."""
    if args.bench_command == "run":
        return _cmd_run(args)
    if args.bench_command == "list":
        return _cmd_list(args)
    if args.bench_command == "compare":
        return _cmd_compare(args)
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")
