"""Ablation — sensitivity to the construction Timeout (Alg. 2, steps 2-7).

The paper prescribes a timeout before a parentless node contacts the
source directly but never states its value.  Shape asserted: convergence
is robust across an order of magnitude of timeout values for both
algorithms (the mechanism matters, the constant does not).
"""

from repro.analysis.reporting import ascii_table
from repro.experiments import ablations

from benchmarks.conftest import BENCH, run_once

TIMEOUTS = (1, 2, 4, 8, 16)


def test_timeout_robustness(benchmark):
    rows = run_once(
        benchmark, ablations.timeout_sweep, profile=BENCH, timeouts=TIMEOUTS
    )
    print()
    print(ascii_table(ablations.TIMEOUT_HEADERS, rows))

    for row in rows:
        timeout, greedy_median, hybrid_median, failures = row
        assert failures == 0, f"timeout={timeout}: runs got stuck"
        assert greedy_median is not None and hybrid_median is not None
    # No cliff: the slowest setting is within a small factor of the fastest.
    greedy_medians = [row[1] for row in rows]
    hybrid_medians = [row[2] for row in rows]
    assert max(greedy_medians) <= 12 * min(greedy_medians)
    assert max(hybrid_medians) <= 12 * min(hybrid_medians)
