"""The circular identifier space of the DHT substrate.

Identifiers live on a ring modulo ``2**bits``; keys and node names are
mapped onto it with SHA-1 (as in Chord).  The only subtle operation is
circular interval membership, used both by routing (finger selection) and
by key ownership (successor test).
"""

from __future__ import annotations

import hashlib

from repro.core.errors import ConfigurationError

#: Default identifier width.  Plenty for the in-process populations used
#: here while keeping printed ids readable.
DEFAULT_BITS = 32


def ring_size(bits: int = DEFAULT_BITS) -> int:
    """Number of points on the identifier ring."""
    if bits < 1:
        raise ConfigurationError("identifier space needs >= 1 bit")
    return 1 << bits


def hash_key(key: object, bits: int = DEFAULT_BITS) -> int:
    """Map an arbitrary key onto the ring (SHA-1, truncated)."""
    digest = hashlib.sha1(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % ring_size(bits)


def in_interval(
    point: int,
    left: int,
    right: int,
    inclusive_right: bool = False,
    bits: int = DEFAULT_BITS,
) -> bool:
    """Whether ``point`` lies in the circular interval ``(left, right)``.

    The interval is open on the left; ``inclusive_right`` closes the right
    end (the successor test ``key in (n, successor]``).  A degenerate
    interval with ``left == right`` denotes the whole ring (minus the left
    point), matching Chord's conventions for single-node rings.
    """
    size = ring_size(bits)
    point, left, right = point % size, left % size, right % size
    if left == right:
        return inclusive_right and point == right or point != left
    if left < right:
        inside = left < point < right
    else:  # wraps around zero
        inside = point > left or point < right
    if inclusive_right and point == right:
        return True
    return inside


def clockwise_distance(start: int, end: int, bits: int = DEFAULT_BITS) -> int:
    """Clockwise distance from ``start`` to ``end`` on the ring."""
    size = ring_size(bits)
    return (end - start) % size
