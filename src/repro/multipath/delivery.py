"""Multipath delivery over multiple LagOvers (§7 future work).

"One promising application is that of peer-to-peer video delivery based
on multipath routing, where each peer participates in multiple LagOvers
with different time constraints - one LagOver for each of the multiple
paths."

:class:`MultipathSystem` builds ``k`` LagOvers from one source over one
consumer population.  Path ``p`` carries the ``p``-th description of the
stream with a latency tolerance of ``l_i + p`` (later descriptions may
arrive later, as in multiple-description coding), and each consumer's
fanout budget is stripe-interleaved across the paths it serves — the
*total* budget never exceeds the workload's ``f_i``, so k-path runs are
comparable to single-path runs at equal capacity.

The payoff is **path diversity**: a consumer keeps receiving as long as
any of its chains to the source survives.  v2 makes the diversity a
guarantee instead of a bias: upstream disjointness is *enforced*.

* At attach time, each path's construction algorithm runs behind a
  composed edge policy: the candidate parent's whole chain to the source
  must be vertex-disjoint (interior nodes; the shared source and the
  consumer itself excepted) from the consumer's chains on every other
  path, on top of the algorithm's own edge invariant.  ``try_attach``
  checks the policy on every non-source edge, so no overlapping edge can
  be created by steps, referrals, displacements or splices.
* :class:`DisjointDelayOracle` (O3 + the same disjointness filter) keeps
  the search efficient — candidates that the edge policy would reject
  are never sampled.  The oracle is an optimization; the edge policy is
  the guarantee.
* Upstream *reconfigurations* can still create overlaps behind a
  consumer's back (path p re-homes an ancestor into territory path q
  already uses).  A per-round repair pass detects any cross-path chain
  intersection and severs the higher-index path's edge
  (:class:`~repro.obs.events.MultipathOverlap` is emitted); the consumer
  then re-attaches through the disjointness-enforcing policy.
  :meth:`MultipathSystem.all_converged` requires zero overlaps, so a
  converged system is vertex-disjoint by construction *and* by check.

Fault plans compose: one :class:`MultipathFaultInjector` drives all k
overlays from a single seeded plan (a peer crashes out of every path at
once), each path's oracle is wrapped in a
:class:`~repro.faults.oracle.FaultGatedOracle` sharing one
:class:`~repro.faults.state.FaultState`, and per-path
:class:`~repro.sim.metrics.MetricsCollector`\\ s feed per-path
:class:`~repro.sim.runner.SimulationResult`\\ s plus system-level
delivery metrics (availability of "≥ 1 rooted path",
paths-surviving distribution, delivery time-to-recover).

One caveat worth knowing when reading traces: stale oracle *views*
(``stale@...``) answer from pre-fault snapshots and are not
disjointness-filtered — a stale answer may point at an overlapping
parent.  That is intended fidelity (a stale directory cannot know the
consumer's current chains); the edge policy still rejects the attach,
so the guarantee holds and the failed attempt shows up as an
``attach-reject`` with reason ``"edge-policy"``.

Design notes (variants tried and rejected — do not re-try casually):

* *Subtree-aware edge validation* (checking the whole subtree of the
  attaching node, since descendants inherit the candidate chain too)
  eliminates policy-side overlap creation entirely, but over-constrains
  reconfiguration: interior nodes with large subtrees become unmovable,
  paths stall below satisfaction, and the starvation repair thrashes.
  Every k=3 cell tested got *worse*.
* *Severing the shared interior node* instead of the affected consumer
  during overlap repair orphans whole subtrees per repair and collapses
  even k=2 cells into permanent churn.
* *Strike-based escalation* (re-rolling the consumer's winning chain
  after repeated repairs of the same losing path) destabilizes the
  lower paths that priority exists to protect; k=3 round counts
  ballooned and large cells stopped converging.

What ships — self-only edge policy, higher-path-loses consumer repair,
and the starvation re-roll for total cross-path blockage — converges
reliably at k=2 across families/sizes/seeds; k=3 converges on
moderately sized draws but can livelock on tight large ones (fanout
split three ways plus vertex-disjointness leaves little slack).  The
bench pins k=3 configurations that converge deterministically.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.constraints import NodeSpec
from repro.core.convergence import measure
from repro.core.errors import ConfigurationError
from repro.core.node import Node
from repro.core.protocol import ProtocolConfig
from repro.core.tree import Overlay
from repro.faults.oracle import FaultGatedOracle
from repro.faults.plan import FaultPlan, NullFaultPlan
from repro.multipath.faults import MultipathFaultInjector
from repro.obs.probe import NULL_PROBE, Probe
from repro.oracles.base import Oracle
from repro.sim.metrics import MetricsCollector
from repro.sim.rng import StreamFactory
from repro.sim.runner import ALGORITHMS, SimulationResult
from repro.workloads.base import Workload
from repro.workloads.repair import repair_population


class DisjointDelayOracle(Oracle):
    """O3 (delay filter) restricted to cross-path disjoint candidates.

    A candidate is admitted when its delay leaves room under the
    enquirer's constraint (Oracle Random-Delay) *and* its own chain to
    the source avoids every interior node already on the enquirer's
    chains in the system's other paths.  Filtering here is what makes
    the search efficient; the composed edge policy on the construction
    algorithm re-checks the same condition at attach time and is the
    actual guarantee (oracle answers can go stale between sample and
    attach, and fault-gated stale views bypass live filters entirely).
    """

    name = "disjoint-delay"
    #: Stale-view snapshots (see :class:`~repro.faults.oracle.FaultGatedOracle`)
    #: filter recorded rows like O3; disjointness needs live chains and is
    #: left to the edge policy.
    filter_mode = "delay"

    def __init__(
        self,
        overlay: Overlay,
        rng: random.Random,
        system: "MultipathSystem",
        path: int,
    ) -> None:
        super().__init__(overlay, rng)
        self.system = system
        self.path = path
        # The blocked-name set is identical for every candidate checked
        # within one sample() pass, and can only change when some overlay
        # mutates an edge; key the memo on the system-wide mutation
        # counters so it is exact.
        self._blocked_key: Optional[tuple] = None
        self._blocked: Set[str] = set()

    def _blocked_for(self, enquirer: Node) -> Set[str]:
        key = (enquirer.name,) + tuple(
            (o.attach_count, o.detach_count) for o in self.system.overlays
        )
        if key != self._blocked_key:
            self._blocked_key = key
            self._blocked = self.system.upstream_elsewhere(
                enquirer.name, self.path
            )
        return self._blocked

    def _admits(self, enquirer: Node, candidate: Node) -> bool:
        if not self.overlay.delay_at(candidate) < enquirer.latency:
            return False
        blocked = self._blocked_for(enquirer)
        if not blocked:
            return True
        current = candidate
        while current is not None and not current.is_source:
            if current.name in blocked:
                return False
            current = current.parent
        return True


@dataclasses.dataclass(frozen=True)
class ResilienceRow:
    """Delivery statistics at one failure fraction."""

    failed_fraction: float
    paths: int
    delivered_fraction: float  # consumers with >= 1 surviving chain
    mean_surviving_paths: float


@dataclasses.dataclass(frozen=True)
class MultipathResult:
    """Outcome of a :class:`MultipathSystem` run.

    ``per_path`` carries one full per-overlay
    :class:`~repro.sim.runner.SimulationResult` (availability,
    recovery series and all); the top-level fields are the *system*
    view, where "delivered" means at least one rooted chain.
    """

    paths: int
    algorithm: str
    seed: int
    converged: bool
    construction_rounds: Optional[int]
    rounds_run: int
    delivery_availability: float
    paths_surviving: Dict[int, int]
    delivery_recovery_series: List[Optional[int]]
    time_to_recover: Optional[int]
    fault_events: int
    overlap_repairs: int
    per_path: Tuple[SimulationResult, ...]


class MultipathSystem:
    """k LagOvers carrying k descriptions of one stream."""

    def __init__(
        self,
        workload: Workload,
        paths: int = 2,
        seed: int = 0,
        protocol: Optional[ProtocolConfig] = None,
        algorithm: str = "hybrid",
        faults: Optional[FaultPlan] = None,
        backend: Optional[str] = None,
        probe: Optional[Probe] = None,
    ) -> None:
        if paths < 1:
            raise ConfigurationError("need at least one path")
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )
        if faults is not None and not isinstance(faults, FaultPlan):
            raise ConfigurationError(
                f"faults must be a FaultPlan, got {type(faults).__name__}"
            )
        self.paths = paths
        self.workload = workload
        self.seed = seed
        self.algorithm_name = algorithm
        self.probe: Probe = probe if probe is not None else NULL_PROBE
        self.fault_plan: FaultPlan = (
            faults if faults is not None else NullFaultPlan()
        )
        self.streams = StreamFactory(seed)
        self.overlays: List[Overlay] = []
        self.algorithms = []
        self.oracles: List[FaultGatedOracle] = []
        self._nodes: List[Dict[str, Node]] = []
        self._names: List[str] = [name for name, _ in workload.population]
        algorithm_cls = ALGORITHMS[algorithm]
        base_edge = algorithm_cls.edge_ok
        for path in range(paths):
            population = []
            for index, (name, spec) in enumerate(workload.population):
                share = spec.fanout // paths
                # Rotate the remainder across paths per consumer, so no
                # single path is systematically starved of capacity (with
                # fanout 2 split three ways, a fixed assignment would give
                # the last path fanout 0 at *every* such node).
                if (path - index) % paths < spec.fanout % paths:
                    share += 1
                population.append(
                    (name, NodeSpec(latency=spec.latency + path, fanout=share))
                )
            population, _ = repair_population(
                workload.source_fanout,
                population,
                self.streams.get(f"repair/{path}"),
            )
            overlay = Overlay(
                source_fanout=workload.source_fanout,
                source_name=f"s{path}",
                backend=backend,
            )
            overlay.probe = self.probe
            nodes = overlay.add_population(population)
            self.overlays.append(overlay)
            self._nodes.append({node.name: node for node in nodes})
        # Injector after all overlays exist: it (and its FaultState) is
        # shared by every path's gated oracle and algorithm.
        self.injector = MultipathFaultInjector(
            self.overlays,
            self.fault_plan,
            self.streams.get("faults"),
            on_fault=self._note_fault,
        )
        for path in range(paths):
            overlay = self.overlays[path]
            inner = DisjointDelayOracle(
                overlay, self.streams.get(f"oracle/{path}"), self, path
            )
            oracle = FaultGatedOracle(
                inner,
                overlay,
                self.injector.state,
                self.streams.get(f"faults-oracle/{path}"),
                history=self.fault_plan.max_staleness(),
            )
            self.oracles.append(oracle)
            construction = algorithm_cls(
                overlay, oracle, protocol or ProtocolConfig()
            )
            construction.edge_ok = self._disjoint_edge(path, base_edge)
            construction.faults = self.injector.state
            construction.backoff_rng = self.streams.get(f"backoff/{path}")
            self.algorithms.append(construction)
        self.collectors = [MetricsCollector(o) for o in self.overlays]
        self.now = 0
        self.overlap_repairs = 0
        self._last_overlaps = 0
        self._first_converged: Optional[int] = None
        self._system_fault_rounds: List[int] = []
        self._delivery_rows: List[Tuple[int, int, int]] = []
        self._order_rng = self.streams.get("order")
        #: Consecutive parentless rounds per (path, consumer) — the
        #: starvation detector behind :meth:`_repair_starvation`.
        self._parentless_rounds: Dict[Tuple[int, str], int] = {}
        #: Total starvation repairs (cross-path chain re-rolls).
        self.unblock_repairs = 0

    # ------------------------------------------------------------------
    # disjointness
    # ------------------------------------------------------------------

    def upstream_elsewhere(self, consumer: str, path: int) -> Set[str]:
        """Names on the consumer's chains to the source in *other* paths."""
        upstream: Set[str] = set()
        for other in range(self.paths):
            if other == path:
                continue
            node = self._nodes[other].get(consumer)
            if node is None:
                continue
            current = node.parent
            while current is not None and not current.is_source:
                upstream.add(current.name)
                current = current.parent
        return upstream

    def _disjoint_edge(
        self, path: int, base: Callable[[Node, Node], bool]
    ) -> Callable[[Node, Node], bool]:
        """The algorithm's own edge invariant AND cross-path disjointness.

        Installed as the instance-level ``edge_ok`` of path ``p``'s
        construction algorithm, so *every* non-source edge creation
        (attach, displacement, splice, referral follow-up) validates the
        candidate parent's whole chain against the child's chains on the
        other paths.

        Deliberately *self-only*: the child's descendants inherit the
        candidate chain too, but validating the whole subtree here was
        tried and over-constrains the system — interior nodes with large
        subtrees become unmovable, reconfiguration stalls, and the
        starvation repair thrashes.  Descendant overlaps created by a
        policy-clean move above them are instead drained by the
        end-of-round :meth:`_repair_overlaps` pass.
        """

        def edge_ok(parent: Node, child: Node) -> bool:
            if not base(parent, child):
                return False
            blocked = self.upstream_elsewhere(child.name, path)
            if not blocked:
                return True
            current = parent
            while current is not None and not current.is_source:
                if current.name in blocked:
                    return False
                current = current.parent
            return True

        return edge_ok

    def _chain_interior(self, path: int, consumer: str) -> FrozenSet[str]:
        """Interior names of the consumer's current chain on ``path``
        (strict ancestors, source excluded); empty when parentless."""
        node = self._nodes[path].get(consumer)
        if node is None or node.parent is None:
            return frozenset()
        names: Set[str] = set()
        current = node.parent
        while current is not None and not current.is_source:
            names.add(current.name)
            current = current.parent
        return frozenset(names)

    def _repair_overlaps(self) -> int:
        """Sever every cross-path chain overlap (higher path loses).

        Reconfigurations above a consumer can route two of its paths
        through the same interior node even though every individual edge
        passed the disjointness policy when created.  One pass per round
        over the population (name order — deterministic) detects any
        intersection and detaches the higher-index path's consumer edge;
        severing only ever *shrinks* chains, so no new overlap can
        appear mid-pass and a clean pass means a vertex-disjoint system.

        Keeping the *lower* path intact is what lets the system settle:
        path 0 converges as if single-path, path 1 configures around it,
        and so on.  The flip side is that deep stacks contend harder —
        k=2 converges reliably across families, sizes and seeds, while
        k=3 can exceed any round budget on tight draws (fanout split
        three ways plus vertex-disjointness leaves little slack; the
        bench pins configurations that converge deterministically).
        Escalations that re-roll the winning chain, and subtree-aware
        edge validation, were both tried and make k=3 *worse* — see the
        module docstring's design notes.
        """
        if self.paths < 2:
            return 0
        repaired = 0
        for name in self._names:
            chains = [
                self._chain_interior(path, name) for path in range(self.paths)
            ]
            for q in range(1, self.paths):
                if not chains[q]:
                    continue
                for p in range(q):
                    shared = chains[p] & chains[q]
                    if not shared:
                        continue
                    node = self._nodes[q][name]
                    self.overlays[q].detach(node, reason="overlap")
                    self.probe.multipath_overlap(
                        node.node_id, p, q, len(shared)
                    )
                    chains[q] = frozenset()
                    self.overlap_repairs += 1
                    repaired += 1
                    break
        return repaired

    #: Consecutive parentless rounds before :meth:`_repair_starvation`
    #: re-rolls a consumer's blocking chains.  Generously above the
    #: rounds an unblocked node needs to attach, so the repair only ever
    #: fires on genuine disjointness deadlocks.
    STARVATION_PATIENCE = 16

    def _repair_starvation(self) -> int:
        """Break cross-path disjointness deadlocks by re-rolling chains.

        Enforced disjointness admits a genuine deadlock the per-edge
        policy cannot see coming: a fragment root's chain on one path
        can run through *every* subtree the other path hangs off the
        source, leaving no admissible parent at all — both paths are
        individually stable, so no protocol move ever fixes it.  The
        repair is the multipath analogue of a self-stabilizing local
        reset: a consumer parentless on some path for
        :data:`STARVATION_PATIENCE` consecutive rounds *while its
        cross-path blocked set is non-empty* detaches itself on every
        other path, emptying its blocked set so the starved path can
        attach anywhere; the other paths then re-attach around the new
        chain.  Deterministic (id-ordered scan, no RNG) and idle once
        converged — a converged system has no parentless node.
        """
        if self.paths < 2:
            return 0
        repaired = 0
        counts = self._parentless_rounds
        for path in range(self.paths):
            for node in self.overlays[path].online_consumers:
                key = (path, node.name)
                if node.parent is not None:
                    counts.pop(key, None)
                    continue
                stuck = counts.get(key, 0) + 1
                if stuck < self.STARVATION_PATIENCE or not (
                    self.upstream_elsewhere(node.name, path)
                ):
                    counts[key] = stuck
                    continue
                for other in range(self.paths):
                    if other == path:
                        continue
                    twin = self._nodes[other][node.name]
                    if twin.online and twin.parent is not None:
                        self.overlays[other].detach(twin, reason="unblock")
                        self.probe.multipath_overlap(
                            twin.node_id, path, other, 0
                        )
                        repaired += 1
                counts[key] = 0
                self.unblock_repairs += 1
        return repaired

    # ------------------------------------------------------------------
    # round loop
    # ------------------------------------------------------------------

    def _note_fault(self, now: int) -> None:
        self._system_fault_rounds.append(now)
        for collector in self.collectors:
            collector.note_fault(now)

    def run_round(self) -> None:
        self.now += 1
        now = self.now
        self.probe.begin_round(now)
        for oracle in self.oracles:
            oracle.on_round(now)
        rosters = []
        for overlay in self.overlays:
            roster = overlay.online_consumers
            self._order_rng.shuffle(roster)
            rosters.append(roster)
        self.injector.inject(now)
        for path in range(self.paths):
            algorithm = self.algorithms[path]
            for node in rosters[path]:
                if not node.online:  # crashed by this round's faults
                    continue
                if node.parent is not None:
                    algorithm.maintain(node)
                else:
                    algorithm.step(node)
        self._last_overlaps = self._repair_overlaps()
        self._repair_starvation()
        self._measure(now)
        if self._first_converged is None and self.all_converged():
            self._first_converged = now

    def _measure(self, now: int) -> None:
        for collector in self.collectors:
            collector.record(now)
        online = self.overlays[0].online_consumers
        delivered = 0
        for node in online:
            name = node.name
            for path in range(self.paths):
                twin = self._nodes[path][name]
                if twin.online and self.overlays[path].is_rooted(twin):
                    delivered += 1
                    break
        self._delivery_rows.append((now, delivered, len(online)))
        if self.probe.enabled:
            self.probe.multipath_delivery(delivered, len(online), self.paths)

    def run(
        self,
        max_rounds: int = 4000,
        stop_at_convergence: Optional[bool] = None,
    ) -> bool:
        """Run rounds; return whether the system converged.

        By default a faultless run stops at convergence and a run with a
        fault plan uses the whole budget (recovery metrics need the
        post-fault rounds), mirroring ``repro.sim``'s
        ``stop_at_convergence`` convention.
        """
        if stop_at_convergence is None:
            stop_at_convergence = self.fault_plan.empty
        while self.now < max_rounds:
            self.run_round()
            if stop_at_convergence and self.all_converged():
                break
        return self.all_converged()

    def all_converged(self) -> bool:
        """Every overlay converged and the last repair pass found no
        cross-path overlap: the system is whole *and* vertex-disjoint."""
        return self._last_overlaps == 0 and all(
            o.is_converged() for o in self.overlays
        )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def delivery_availability(self) -> float:
        """Mean over rounds of ``delivered / online`` (1.0 before any
        measurement), where delivered means ≥ 1 rooted chain."""
        delivered = sum(row[1] for row in self._delivery_rows)
        online = sum(row[2] for row in self._delivery_rows)
        return delivered / online if online else 1.0

    def delivery_recovery_series(self) -> List[Optional[int]]:
        """Per fault event: rounds until full delivery (every online
        consumer had ≥ 1 rooted chain again); ``None`` if never."""
        series: List[Optional[int]] = []
        for fault in self._system_fault_rounds:
            recovered: Optional[int] = None
            for now, delivered, online in self._delivery_rows:
                if now >= fault and delivered == online:
                    recovered = now - fault
                    break
            series.append(recovered)
        return series

    def paths_surviving(self) -> Dict[int, int]:
        """Final-state histogram: rooted-path count -> online consumers."""
        dist: Dict[int, int] = {}
        for node in self.overlays[0].online_consumers:
            count = sum(
                1
                for path in range(self.paths)
                if self.overlays[path].is_rooted(self._nodes[path][node.name])
            )
            dist[count] = dist.get(count, 0) + 1
        return dict(sorted(dist.items()))

    def _path_result(self, path: int) -> SimulationResult:
        collector = self.collectors[path]
        overlay = self.overlays[path]
        first = collector.first_converged_round()
        return SimulationResult(
            workload_name=self.workload.name,
            algorithm=self.algorithm_name,
            oracle=f"disjoint-delay/{path}",
            seed=self.seed,
            converged=first is not None,
            construction_rounds=first,
            rounds_run=self.now,
            final_quality=measure(overlay),
            satisfied_series=collector.satisfied_series(),
            attaches=overlay.attach_count,
            detaches=overlay.detach_count,
            oracle_misses=self.oracles[path].misses,
            departures=0,
            rejoins=0,
            phase_timings={},
            availability=collector.availability(),
            time_to_recover=collector.time_to_recover(),
            fault_events=self.injector.injected,
            recovery_series=collector.recovery_series(),
        )

    def result(self) -> MultipathResult:
        """Package the current state as a :class:`MultipathResult`."""
        recovery = self.delivery_recovery_series()
        time_to_recover: Optional[int] = None
        if recovery and all(r is not None for r in recovery):
            time_to_recover = max(recovery)  # type: ignore[type-var]
        return MultipathResult(
            paths=self.paths,
            algorithm=self.algorithm_name,
            seed=self.seed,
            converged=self._first_converged is not None,
            construction_rounds=self._first_converged,
            rounds_run=self.now,
            delivery_availability=self.delivery_availability(),
            paths_surviving=self.paths_surviving(),
            delivery_recovery_series=recovery,
            time_to_recover=time_to_recover,
            fault_events=self.injector.injected,
            overlap_repairs=self.overlap_repairs,
            per_path=tuple(
                self._path_result(path) for path in range(self.paths)
            ),
        )

    def summary_result(self) -> SimulationResult:
        """A single-overlay-shaped summary for the sweep machinery.

        Convergence and recovery are the *system* notions (all paths
        whole and disjoint; delivery = ≥ 1 rooted chain), the quality
        and series fields take the worst path per round, and the count
        fields sum over paths — so ``repro sweep --paths K`` cells
        aggregate exactly like single-path cells.
        """
        multipath = self.result()
        per_path = multipath.per_path
        worst = min(
            per_path, key=lambda r: r.final_quality.satisfied_fraction
        )
        series = [
            min(values) for values in zip(*(r.satisfied_series for r in per_path))
        ]
        return SimulationResult(
            workload_name=self.workload.name,
            algorithm=self.algorithm_name,
            oracle="disjoint-delay",
            seed=self.seed,
            converged=multipath.converged,
            construction_rounds=multipath.construction_rounds,
            rounds_run=self.now,
            final_quality=worst.final_quality,
            satisfied_series=series,
            attaches=sum(r.attaches for r in per_path),
            detaches=sum(r.detaches for r in per_path),
            oracle_misses=sum(r.oracle_misses for r in per_path),
            departures=0,
            rejoins=0,
            phase_timings={},
            availability=multipath.delivery_availability,
            time_to_recover=multipath.time_to_recover,
            fault_events=multipath.fault_events,
            recovery_series=multipath.delivery_recovery_series,
        )

    # ------------------------------------------------------------------
    # resilience analysis
    # ------------------------------------------------------------------

    def chain_alive(self, consumer: str, path: int, failed: Set[str]) -> bool:
        """Whether the consumer's path-``p`` chain to the source survives."""
        if consumer in failed:
            return False
        node = self._nodes[path].get(consumer)
        if node is None:
            return False
        current = node
        while current.parent is not None:
            current = current.parent
            if not current.is_source and current.name in failed:
                return False
        return current.is_source

    def delivery_under_failure(self, failed: Set[str]) -> Dict[str, int]:
        """For each surviving consumer: how many of its paths still work."""
        survivors = {}
        for name in self._names:
            if name in failed:
                continue
            survivors[name] = sum(
                1
                for path in range(self.paths)
                if self.chain_alive(name, path, failed)
            )
        return survivors


def delivery_under_failures(
    workload: Workload,
    paths: int,
    failure_fractions: List[float],
    seed: int = 0,
    trials: int = 5,
    max_rounds: int = 4000,
    algorithm: str = "hybrid",
    backend: Optional[str] = None,
) -> List[ResilienceRow]:
    """Build a k-path system and sweep random-failure fractions.

    Each row averages ``trials`` independent failure draws on the same
    built system (building is the expensive part; failures are cheap).
    The fanout budget is the workload's own ``f_i`` regardless of ``k``
    (stripe-interleaved split), so rows for different ``paths`` compare
    delivery at equal total capacity.
    """
    system = MultipathSystem(
        workload, paths=paths, seed=seed, algorithm=algorithm, backend=backend
    )
    if not system.run(max_rounds=max_rounds):
        raise ConfigurationError("multipath system failed to converge")
    fail_rng = system.streams.get("failures")
    names = [name for name, _ in workload.population]
    rows: List[ResilienceRow] = []
    for fraction in failure_fractions:
        delivered = 0
        survivors_total = 0
        surviving_paths = 0
        for _ in range(trials):
            count = int(round(fraction * len(names)))
            failed = set(fail_rng.sample(names, count))
            survivors = system.delivery_under_failure(failed)
            survivors_total += len(survivors)
            delivered += sum(1 for paths_ok in survivors.values() if paths_ok > 0)
            surviving_paths += sum(survivors.values())
        rows.append(
            ResilienceRow(
                failed_fraction=fraction,
                paths=paths,
                delivered_fraction=(
                    delivered / survivors_total if survivors_total else 1.0
                ),
                mean_surviving_paths=(
                    surviving_paths / survivors_total if survivors_total else 0.0
                ),
            )
        )
    return rows
