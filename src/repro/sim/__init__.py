"""Simulation machinery: round loop, churn, asynchrony, metrics, events."""

from repro.sim.asynchrony import AsynchronyConfig, AsynchronyModel
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import EventHandle, EventScheduler
from repro.sim.metrics import MetricsCollector, RoundRecord
from repro.sim.rng import StreamFactory, derive_seed, make_stream
from repro.sim.runner import (
    ALGORITHMS,
    make_simulation,
    register_algorithm,
    Simulation,
    SimulationConfig,
    SimulationResult,
    run_simulation,
)
from repro.sim.timemodel import TimeModel, parse_time_model
from repro.sim.trace import OverlayTrace, TraceFrame

__all__ = [
    "ALGORITHMS",
    "AsynchronyConfig",
    "AsynchronyModel",
    "ChurnConfig",
    "ChurnProcess",
    "EventHandle",
    "EventScheduler",
    "MetricsCollector",
    "OverlayTrace",
    "RoundRecord",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "StreamFactory",
    "TimeModel",
    "TraceFrame",
    "derive_seed",
    "make_simulation",
    "make_stream",
    "parse_time_model",
    "register_algorithm",
    "run_simulation",
]
