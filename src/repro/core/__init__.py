"""Core LagOver machinery: the paper's primary contribution.

Public surface:

* :class:`~repro.core.constraints.NodeSpec` — per-node latency/fanout pair.
* :class:`~repro.core.tree.Overlay` — the overlay forest with the paper's
  chain metadata (``Parent``, ``Children``, ``Root``, ``DelayAt``).
* :class:`~repro.core.greedy.GreedyConstruction` and
  :class:`~repro.core.hybrid.HybridConstruction` — the two construction
  algorithms of §3, with their maintenance rules.
* :mod:`~repro.core.sufficiency` — existence condition (§3.3) and exact
  feasibility search.
"""

from repro.core.constraints import NodeSpec, parse_population, parse_spec
from repro.core.convergence import OverlayQuality, measure
from repro.core.errors import (
    ConfigurationError,
    ConvergenceError,
    FanoutExceededError,
    InvalidConstraintError,
    LagOverError,
    OfflineNodeError,
    TopologyError,
    UnknownNodeError,
)
from repro.core.greedy import GreedyConstruction
from repro.core.hybrid import HybridConstruction
from repro.core.node import SOURCE_ID, Node
from repro.core.protocol import ConstructionAlgorithm, ProtocolConfig
from repro.core.sufficiency import (
    find_feasible_configuration,
    sufficiency_holds,
)
from repro.core.tree import Overlay

__all__ = [
    "SOURCE_ID",
    "ConfigurationError",
    "ConstructionAlgorithm",
    "ConvergenceError",
    "FanoutExceededError",
    "GreedyConstruction",
    "HybridConstruction",
    "InvalidConstraintError",
    "LagOverError",
    "Node",
    "NodeSpec",
    "OfflineNodeError",
    "Overlay",
    "OverlayQuality",
    "ProtocolConfig",
    "TopologyError",
    "UnknownNodeError",
    "find_feasible_configuration",
    "measure",
    "parse_population",
    "parse_spec",
    "sufficiency_holds",
]
