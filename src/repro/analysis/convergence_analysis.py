"""Time-series analysis of construction runs.

The satisfied-fraction series recorded every round carries more
information than the single construction-latency number: how fast the
bulk of the population gets satisfied, and how stable satisfaction is
under churn.  These helpers extract the derived measures the churn and
ablation benches report.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence


def time_to_fraction(series: Sequence[float], threshold: float) -> Optional[int]:
    """First round (1-based) at which the satisfied fraction reaches
    ``threshold``, or ``None`` if it never does."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    for index, value in enumerate(series):
        if value >= threshold:
            return index + 1
    return None


def steady_state_mean(series: Sequence[float], warmup: int) -> float:
    """Mean satisfied fraction after discarding ``warmup`` rounds."""
    tail = list(series[warmup:])
    if not tail:
        raise ValueError("series shorter than warmup")
    return sum(tail) / len(tail)


def worst_dip(series: Sequence[float], warmup: int) -> float:
    """Lowest satisfaction observed after warmup (churn-resilience floor)."""
    tail = list(series[warmup:])
    if not tail:
        raise ValueError("series shorter than warmup")
    return min(tail)


@dataclasses.dataclass(frozen=True)
class SeriesProfile:
    """Convergence profile of one run's satisfied-fraction series."""

    rounds: int
    time_to_half: Optional[int]
    time_to_90: Optional[int]
    time_to_all: Optional[int]
    final: float


def profile(series: Sequence[float]) -> SeriesProfile:
    """Standard milestones of a satisfaction series."""
    if not series:
        raise ValueError("empty series")
    return SeriesProfile(
        rounds=len(series),
        time_to_half=time_to_fraction(series, 0.5),
        time_to_90=time_to_fraction(series, 0.9),
        time_to_all=time_to_fraction(series, 1.0),
        final=series[-1],
    )
