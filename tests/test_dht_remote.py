"""Tests for message-level DHT lookups (repro.dht.remote)."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.dht.chord import ChordRing
from repro.dht.hashspace import hash_key, ring_size
from repro.dht.remote import LookupClient, measure_lookup_latency, wire_ring
from repro.network.latency import ConstantLatency, CoordinateLatency
from repro.network.transport import Network
from repro.sim.engine import EventScheduler


def make_ring(n=24, bits=16):
    ring = ChordRing(bits=bits)
    for index in range(n):
        ring.add_peer(f"peer-{index}")
    return ring


class TestLookupProtocol:
    def test_owner_matches_synchronous_router(self):
        ring = make_ring()
        scheduler = EventScheduler()
        network = Network(scheduler, ConstantLatency(1.0))
        keys = [hash_key(f"k{i}", 16) for i in range(20)]
        results = measure_lookup_latency(ring, network, scheduler, keys)
        assert len(results) == 20
        assert all(r.owner is not None for r in results)

    def test_latency_counts_request_reply_pairs(self):
        ring = make_ring()
        scheduler = EventScheduler()
        network = Network(scheduler, ConstantLatency(0.5))
        results = measure_lookup_latency(
            ring, network, scheduler, [hash_key("x", 16)]
        )
        result = results[0]
        # (hops + 1) exchanges, each 2 x 0.5 time units.
        assert result.latency == pytest.approx((result.hops + 1) * 1.0)

    def test_coordinate_latency_varies(self):
        ring = make_ring()
        scheduler = EventScheduler()
        network = Network(
            scheduler, CoordinateLatency(random.Random(1), base=0.1, scale=1.0)
        )
        keys = [hash_key(f"k{i}", 16) for i in range(15)]
        results = measure_lookup_latency(ring, network, scheduler, keys)
        latencies = {round(r.latency, 6) for r in results}
        assert len(latencies) > 5  # heterogeneous paths

    def test_lossy_network_retries_and_completes(self):
        ring = make_ring(12)
        scheduler = EventScheduler()
        network = Network(
            scheduler,
            ConstantLatency(0.5),
            loss_probability=0.1,
            rng=random.Random(7),
        )
        keys = [hash_key(f"k{i}", 16) for i in range(25)]
        results = measure_lookup_latency(ring, network, scheduler, keys)
        finished = [r for r in results if r.finished_at is not None]
        assert len(finished) >= 20  # most complete despite 10% loss
        assert any(r.retries > 0 for r in results)

    def test_hopeless_loss_gives_up_after_max_retries(self):
        ring = make_ring(6)
        scheduler = EventScheduler()
        network = Network(
            scheduler,
            ConstantLatency(0.5),
            loss_probability=0.999,
            rng=random.Random(1),
        )
        wire_ring(ring, network)
        client = LookupClient(
            "client", ring, network, scheduler, retry_timeout=2.0, max_retries=2
        )
        result = client.lookup(hash_key("x", 16))
        scheduler.run()
        assert result.finished_at is None
        assert result.retries == 2
        assert result in client.completed  # reported, as failed

    def test_empty_ring_rejected(self):
        scheduler = EventScheduler()
        network = Network(scheduler)
        client = LookupClient("client", ChordRing(), network, scheduler)
        with pytest.raises(ConfigurationError):
            client.lookup(1)

    def test_single_peer_ring(self):
        ring = make_ring(1)
        scheduler = EventScheduler()
        network = Network(scheduler, ConstantLatency(1.0))
        results = measure_lookup_latency(ring, network, scheduler, [123, 456])
        assert all(r.owner == "peer-0" for r in results)
        assert all(r.hops == 0 for r in results)

    def test_mean_hops_logarithmicish_at_scale(self):
        ring = make_ring(64)
        scheduler = EventScheduler()
        network = Network(scheduler, ConstantLatency(1.0))
        keys = list(range(0, ring_size(16), 1499))
        results = measure_lookup_latency(ring, network, scheduler, keys)
        mean_hops = sum(r.hops for r in results) / len(results)
        assert mean_hops <= 12  # ~2*log2(64)
